//! Property tests for the simulator substrate: arbitrary topologies keep
//! port reciprocity and slot-arena consistency, and the parallel scheduler
//! is bit-identical to the sequential one under arbitrary
//! protocols-with-state. Runs seeded random cases (the offline equivalent
//! of the previous proptest strategies).

use dcover_congest::{Ctx, ParallelSimulator, Process, Simulator, Status, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random link list over n ∈ [2, 30] nodes (self-loops filtered;
/// parallel links allowed).
fn random_links(rng: &mut StdRng) -> (usize, Vec<(usize, usize)>) {
    let n = rng.gen_range(2usize..=30);
    let tries = rng.gen_range(0usize..60);
    let links: Vec<(usize, usize)> = (0..tries)
        .map(|_| (rng.gen_range(0usize..n), rng.gen_range(0usize..n)))
        .filter(|(a, b)| a != b)
        .collect();
    (n, links)
}

/// A stateful gossip protocol whose behaviour depends on inbox contents,
/// node id, and round parity — enough entropy to catch scheduler bugs.
#[derive(Clone)]
struct Mixer {
    acc: u64,
    ttl: u32,
}

impl Process for Mixer {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        for item in ctx.inbox() {
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(item.msg ^ (item.port as u64) << 7);
        }
        if self.ttl == 0 {
            return Status::Halted;
        }
        self.ttl -= 1;
        if ctx.round() % 2 == ctx.node() as u64 % 2 {
            // Send a state-dependent value on a state-dependent port.
            if ctx.degree() > 0 {
                let port = (self.acc as usize) % ctx.degree();
                ctx.send(port, self.acc % 1_000_003);
            }
        } else {
            ctx.broadcast(ctx.node() as u64 + ctx.round());
        }
        Status::Running
    }
}

#[test]
fn reciprocity_holds() {
    let mut rng = StdRng::seed_from_u64(0x0707);
    for case in 0..64 {
        let (n, links) = random_links(&mut rng);
        let t = Topology::from_links(n, &links);
        assert_eq!(t.num_links(), links.len(), "case {case}");
        assert_eq!(t.total_ports(), 2 * links.len(), "case {case}");
        for u in 0..t.len() {
            for p in 0..t.degree(u) {
                let (v, q) = t.peer(u, p);
                assert_eq!(t.peer(v, q), (u, p), "case {case} at ({u},{p})");
            }
        }
    }
}

#[test]
fn slot_arena_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0x51_07);
    for case in 0..64 {
        let (n, links) = random_links(&mut rng);
        let t = Topology::from_links(n, &links);
        let mut seen = vec![false; t.total_ports()];
        for u in 0..t.len() {
            let range = t.slot_range(u);
            assert_eq!(range.len(), t.degree(u), "case {case}");
            for p in 0..t.degree(u) {
                let slot = t.slot_of(u, p);
                assert!(range.contains(&slot), "case {case}");
                assert!(!seen[slot], "case {case}: slot reused");
                seen[slot] = true;
                assert_eq!(t.slot_owner(slot), (u, p), "case {case}");
                // The reciprocal of the reciprocal is the slot itself.
                let (v, q) = t.peer(u, p);
                assert_eq!(t.reciprocal_slot(u, p), t.slot_of(v, q), "case {case}");
                assert_eq!(t.reciprocal_slot(v, q), slot, "case {case}");
            }
        }
        assert!(seen.iter().all(|&s| s), "case {case}: arena has holes");
    }
}

#[test]
fn parallel_equals_sequential() {
    let mut rng = StdRng::seed_from_u64(0xe9_u64 ^ 0xbeef);
    for case in 0..64 {
        let (n, links) = random_links(&mut rng);
        let ttl = rng.gen_range(1u32..8);
        let threads = rng.gen_range(1usize..6);
        let make = || {
            (0..n)
                .map(|i| Mixer { acc: i as u64, ttl })
                .collect::<Vec<_>>()
        };
        let mut seq = Simulator::new(Topology::from_links(n, &links), make()).with_trace(true);
        let seq_report = seq.run(10 + u64::from(ttl)).unwrap();
        let mut par = ParallelSimulator::new(Topology::from_links(n, &links), make(), threads)
            .with_trace(true);
        let par_report = par.run(10 + u64::from(ttl)).unwrap();
        assert_eq!(seq_report, par_report, "case {case} threads {threads}");
        for i in 0..n {
            assert_eq!(
                seq.node(i).acc,
                par.node(i).acc,
                "case {case} node {i} state"
            );
        }
    }
}
