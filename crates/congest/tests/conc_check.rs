//! Model-checked interleaving scenarios for the task-pool scheduler.
//!
//! Compiled only under `RUSTFLAGS="--cfg conc_check"`: the
//! `dcover_congest::sync` facade then routes every mutex acquire, condvar
//! wait/notify, atomic access, and thread spawn/join through the
//! `dcover_conccheck` scheduler, and each test below explores thousands of
//! distinct interleavings of the real pool code.
//!
//! Every scenario asserts the **exactly-once ticket ledger** (each issued
//! ticket resolves exactly one way — the hard assert in `TaskSlot::fill`
//! turns a double resolution into a model failure) and the
//! [`SchedMetrics`] counter identity `submitted == completed + expired +
//! cancelled + panicked` once the pool has drained.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg conc_check" cargo test -p dcover-congest --test conc_check
//! ```

#![cfg(conc_check)]

use std::sync::Arc;
use std::time::Duration;

use dcover_conccheck::{explore, Config};
use dcover_congest::sync::thread;
use dcover_congest::{
    CancelToken, Ctx, EngineArena, Process, SchedMetrics, SimPool, Status, TaskClass, TaskError,
    TaskOptions, TaskTicket, TrySubmitError,
};

/// Minimal process type to instantiate the pool; the scenarios drive task
/// jobs only, so no rounds ever run.
struct Nop;
impl Process for Nop {
    type Msg = u32;
    fn on_round(&mut self, _ctx: &mut Ctx<'_, u32>) -> Status {
        Status::Halted
    }
}

/// Per-scenario exploration floor. Three pool scenarios plus the two
/// service scenarios in `dcover-core` sum past the 10 000-interleaving
/// acceptance bar.
const FLOOR: usize = 2500;

/// Extra seeded random iterations per scenario, on top of the floor —
/// CI's conc-check job sets this to 5000.
fn extra_random_iters() -> usize {
    std::env::var("CONC_CHECK_RANDOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Bounded-exhaustive pass capped at `floor`, topped up with a seeded
/// random walk so every scenario explores at least `floor` interleavings
/// even when the bounded space is smaller, plus any
/// `CONC_CHECK_RANDOM_ITERS` requested by the environment.
fn explore_at_least<F: Fn() + Send + Sync>(floor: usize, seed: u64, body: F) -> usize {
    let first = explore(Config::exhaustive(2, floor), &body);
    let mut total = first.executions;
    if total < floor {
        total += explore(Config::random(seed, floor - total), &body).executions;
    }
    let extra = extra_random_iters();
    if extra > 0 {
        total += explore(Config::random(seed ^ 0xA5A5, extra), &body).executions;
    }
    total
}

/// Unwraps a ticket that the drained pool must have resolved.
fn resolved<T: Send + 'static>(ticket: TaskTicket<T>) -> Result<T, TaskError> {
    match ticket.try_wait() {
        Ok(outcome) => outcome,
        Err(_) => panic!("ticket unresolved after the pool drained"),
    }
}

/// Asserts the per-class ledger identity once the pool has drained: every
/// accepted task resolved exactly one way. `rejected` and `shed` count
/// refusals that never entered the queue, so they sit outside the sum.
fn assert_identity(metrics: &SchedMetrics, class: TaskClass) {
    let c = metrics.class(class);
    assert_eq!(
        c.submitted,
        c.completed + c.expired + c.cancelled + c.panicked,
        "ledger identity violated for {class:?}"
    );
}

/// A queued task's cancel token is cancelled from a second thread while
/// the pool is dropped (drain) from the first: whichever side wins, the
/// ticket resolves exactly once — as the value or as `Cancelled`.
#[test]
fn submit_cancel_race_resolves_exactly_once() {
    let total = explore_at_least(FLOOR, 0xC0FFEE, || {
        let metrics = Arc::new(SchedMetrics::new());
        let pool: SimPool<Nop> = SimPool::with_metrics(1, 4, Arc::clone(&metrics));
        let token = CancelToken::new();
        let ticket = pool
            .submit_with(
                TaskOptions::bulk().with_cancel(token.clone()),
                |_a: &mut EngineArena<Nop>| 7u32,
            )
            .unwrap();
        let canceller = thread::spawn(move || token.cancel());
        drop(pool);
        canceller.join().unwrap();
        match resolved(ticket) {
            Ok(7) => {}
            Ok(other) => panic!("wrong task value {other}"),
            Err(e) => assert!(e.is_cancelled(), "unexpected task error: {e}"),
        }
        let c = metrics.class(TaskClass::Bulk);
        assert_eq!(c.submitted, 1);
        assert_eq!(c.expired, 0);
        assert_eq!(c.panicked, 0);
        assert_identity(&metrics, TaskClass::Bulk);
    });
    assert!(total >= FLOOR, "explored only {total} interleavings");
}

/// A task submitted with an already-past (zero) deadline races the
/// worker's dequeue and the drop-drain: it must resolve as `Expired` on
/// every path, while an effectively-infinite deadline never fires.
#[test]
fn zero_deadline_expiry_races_dequeue() {
    let total = explore_at_least(FLOOR, 0xDEAD11E, || {
        let metrics = Arc::new(SchedMetrics::new());
        let pool: SimPool<Nop> = SimPool::with_metrics(1, 4, Arc::clone(&metrics));
        let doomed = pool
            .submit_with(
                TaskOptions::interactive().deadline_in(Duration::ZERO),
                |_a: &mut EngineArena<Nop>| 1u32,
            )
            .unwrap();
        let live = pool
            .submit_with(
                TaskOptions::bulk().deadline_in(Duration::from_secs(86_400)),
                |_a: &mut EngineArena<Nop>| 2u32,
            )
            .unwrap();
        drop(pool);
        let expired = resolved(doomed).expect_err("zero deadline is past at every dequeue");
        assert!(expired.is_expired(), "unexpected task error: {expired}");
        assert_eq!(resolved(live).expect("day-long deadline never fires"), 2);
        let interactive = metrics.class(TaskClass::Interactive);
        assert_eq!(interactive.submitted, 1);
        assert_eq!(interactive.expired, 1);
        assert_identity(&metrics, TaskClass::Interactive);
        assert_identity(&metrics, TaskClass::Bulk);
    });
    assert!(total >= FLOOR, "explored only {total} interleavings");
}

/// Shutdown (drop-drain) races an in-flight cancel *and* a late
/// submitter: the late submission is either accepted (and then must
/// complete — drains run everything) or refused as `Closed`; the
/// cancelled ticket resolves exactly once either way.
#[test]
fn shutdown_drain_races_in_flight_cancel() {
    let total = explore_at_least(FLOOR, 0x51DE0, || {
        let metrics = Arc::new(SchedMetrics::new());
        let pool: SimPool<Nop> = SimPool::with_metrics(1, 4, Arc::clone(&metrics));
        let queue = pool.queue();
        let token = CancelToken::new();
        let victim = pool
            .submit_with(
                TaskOptions::bulk().with_cancel(token.clone()),
                |_a: &mut EngineArena<Nop>| 1u32,
            )
            .unwrap();
        let bystander = pool.submit(|_a: &mut EngineArena<Nop>| 2u32).unwrap();
        let canceller = thread::spawn(move || token.cancel());
        let late = thread::spawn(move || queue.try_submit(|_a: &mut EngineArena<Nop>| 3u32));
        drop(pool);
        canceller.join().unwrap();
        match resolved(victim) {
            Ok(1) => {}
            Ok(other) => panic!("wrong task value {other}"),
            Err(e) => assert!(e.is_cancelled(), "unexpected task error: {e}"),
        }
        assert_eq!(resolved(bystander).expect("no deadline, no token"), 2);
        let mut accepted = 2;
        match late.join().unwrap() {
            Ok(ticket) => {
                accepted += 1;
                assert_eq!(resolved(ticket).expect("accepted work drains"), 3);
            }
            Err(TrySubmitError::Closed) => {}
            Err(other) => panic!("unexpected refusal: {other}"),
        }
        assert_eq!(metrics.class(TaskClass::Bulk).submitted, accepted);
        assert_identity(&metrics, TaskClass::Bulk);
        assert_identity(&metrics, TaskClass::Interactive);
    });
    assert!(total >= FLOOR, "explored only {total} interleavings");
}
