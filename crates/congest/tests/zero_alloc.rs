//! Enforces the round engine's steady-state **zero-allocation** guarantee.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase (early rounds grow staging-bucket and dirty-list capacity), the
//! steady-state round loop of both schedulers must perform exactly zero
//! heap allocations. Run with `--test-threads=1` semantics in mind: the
//! counter is global, so each test snapshots the counter around its own
//! measured region and the workloads do not allocate in other threads —
//! for the parallel test the workers themselves are the measured region.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dcover_congest::{
    Ctx, ParallelSimulator, PartitionPolicy, Process, Simulator, Status, Topology,
};

/// System allocator wrapper that counts allocations (and reallocations).
struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY-FREE NOTE: implementing `GlobalAlloc` requires `unsafe` by design;
// this is test-only code, delegating straight to `System`.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed: allocation tally; each test reads only its own
        // thread's window, no ordering needed (see `allocs`).
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // relaxed: allocation tally, as in `alloc` above.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: Counting = Counting;

fn allocs() -> u64 {
    // relaxed: the measured region runs on the reading thread (or joins
    // the workers first), so program order already sequences the reads.
    ALLOCS.load(Ordering::Relaxed)
}

/// Message-heavy gossip: every node broadcasts every round — the workload
/// class the engine is optimized for (MWHVC sends on every link).
struct Flood {
    acc: u64,
    rounds: u64,
}

impl Process for Flood {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        for item in ctx.inbox() {
            self.acc = self.acc.wrapping_add(item.msg);
        }
        if ctx.round() >= self.rounds {
            return Status::Halted;
        }
        ctx.broadcast(self.acc % 1023 + 1);
        Status::Running
    }
}

fn grid_topology(rows: usize, cols: usize) -> Topology {
    let id = |r: usize, c: usize| r * cols + c;
    let mut links = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                links.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                links.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Topology::from_links(rows * cols, &links)
}

fn flood_nodes(n: usize, rounds: u64) -> Vec<Flood> {
    (0..n)
        .map(|i| Flood {
            acc: i as u64,
            rounds,
        })
        .collect()
}

#[test]
fn sequential_steady_state_allocates_nothing() {
    let topo = grid_topology(20, 20);
    let n = topo.len();
    let mut sim = Simulator::new(topo, flood_nodes(n, 200));
    // Warm-up: let staging buckets and dirty lists reach capacity.
    for _ in 0..20 {
        sim.step().unwrap();
    }
    let before = allocs();
    for _ in 0..100 {
        sim.step().unwrap();
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "sequential round loop allocated {during} times in 100 steady-state rounds"
    );
}

#[test]
fn parallel_steady_state_allocates_nothing() {
    let topo = grid_topology(20, 20);
    let n = topo.len();
    let mut sim = ParallelSimulator::new(topo, flood_nodes(n, 400), 4);
    for _ in 0..20 {
        sim.step().unwrap();
    }
    let before = allocs();
    for _ in 0..100 {
        sim.step().unwrap();
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "parallel round loop allocated {during} times in 100 steady-state rounds"
    );
}

#[test]
fn locality_fast_path_steady_state_allocates_nothing() {
    // Under the locality policy most grid neighbours land in the same
    // chunk, so the measured loop exercises the intra-chunk fast path
    // (direct mailbox writes + dirty-list pushes) rather than the
    // staging buckets. The guarantee is the same: once the dirty lists
    // and the residual cross-chunk buckets reach capacity, a broadcast
    // round performs zero heap allocations.
    let topo = grid_topology(20, 20);
    let n = topo.len();
    let mut sim =
        ParallelSimulator::with_partition(topo, flood_nodes(n, 400), 4, PartitionPolicy::Locality);
    for _ in 0..20 {
        sim.step().unwrap();
    }
    let before = allocs();
    for _ in 0..100 {
        sim.step().unwrap();
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "locality fast-path round loop allocated {during} times in 100 steady-state rounds"
    );
}

#[test]
fn warmup_allocations_are_bounded() {
    // Sanity check on the harness itself: construction does allocate.
    let before = allocs();
    let topo = grid_topology(10, 10);
    let n = topo.len();
    let mut sim = Simulator::new(topo, flood_nodes(n, 50));
    sim.run(100).unwrap();
    assert!(allocs() > before, "allocation counter must be live");
}
