//! Thin binary wrapper around [`dcover_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dcover_cli::run(&args));
}
