//! Minimal JSON emission and parsing (no serde offline): string escaping,
//! a small object/array builder producing deterministic, human-diffable
//! output, and a recursive-descent parser for reading reports back (the
//! `verify` subcommand consumes `solve`/`serve` JSON output).

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON object under construction.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an integer or other plain-`Display` numeric field.
    #[must_use]
    pub fn num<T: std::fmt::Display>(mut self, key: &str, value: T) -> Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a float field (`null` when non-finite, which JSON cannot carry).
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push(format!("\"{}\": {rendered}", escape(key)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    #[must_use]
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.fields.push(format!("\"{}\": {rendered}", escape(key)));
        self
    }

    /// Renders the object.
    #[must_use]
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// Renders a JSON array from pre-rendered element values.
#[must_use]
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

/// A parsed JSON value.
///
/// Numbers are kept as `f64` — every number this CLI emits (counts,
/// weights ≤ 2⁵³, duals) round-trips exactly through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an object (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Maximum container nesting the parser accepts. Reports this CLI emits
/// nest three levels deep; the limit exists so a hostile report file hits
/// a clean error instead of overflowing the stack (the parser recurses).
const MAX_DEPTH: u32 = 128;

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a human-readable message with a byte offset on malformed
/// input, or a depth error beyond 128 nested containers.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected `{word}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number chars");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogate pairs are not emitted by this CLI;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte chars pass through).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn parser_roundtrips_builder_output() {
        let report = Obj::new()
            .str("name", "a\"b\nc")
            .num("count", 42u64)
            .float("ratio", 1.5)
            .float("nan", f64::NAN)
            .bool("ok", true)
            .raw("cover", &array(["1".to_string(), "3".to_string()]))
            .raw("nested", &Obj::new().num("k", 3).build())
            .build();
        let v = parse(&report).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a\"b\nc"));
        assert_eq!(v.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("nan").unwrap(), &Value::Null);
        assert_eq!(v.get("ok").unwrap(), &Value::Bool(true));
        let cover = v.get("cover").unwrap().as_array().unwrap();
        assert_eq!(cover.len(), 2);
        assert_eq!(cover[1].as_f64(), Some(3.0));
        assert_eq!(
            v.get("nested").unwrap().get("k").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_errors() {
        assert_eq!(parse(" null ").unwrap(), Value::Null);
        assert_eq!(parse("[ ]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{ }").unwrap(), Value::Obj(vec![]));
        assert_eq!(parse("-2.5e3").unwrap(), Value::Num(-2500.0));
        assert_eq!(
            parse("\"\\u0041\\t\"").unwrap(),
            Value::Str("A\t".to_string())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".to_string()));
        assert!(parse("").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("truthy").is_err());
        // Hostile nesting hits the depth limit cleanly instead of
        // overflowing the stack (verify consumes external files).
        let deep = "[".repeat(200_000) + &"]".repeat(200_000);
        let err = parse(&deep).expect_err("depth-limited");
        assert!(err.contains("nesting deeper"), "{err}");
    }

    #[test]
    fn duals_roundtrip_exactly_through_display() {
        // `verify` re-reads duals the CLI printed with `{}`; Rust's float
        // Display is shortest-roundtrip, so equality must be exact.
        for d in [0.1, 1.0 / 3.0, 2.2250738585072014e-308, 12345.6789f64] {
            let v = parse(&format!("{d}")).unwrap();
            assert_eq!(v.as_f64(), Some(d));
        }
    }

    #[test]
    fn object_and_array_render() {
        let inner = Obj::new().num("k", 3).build();
        let obj = Obj::new()
            .str("name", "a\"b")
            .num("count", 42u64)
            .float("ratio", 1.5)
            .float("bad", f64::NAN)
            .bool("ok", true)
            .raw("nested", &inner)
            .build();
        assert_eq!(
            obj,
            "{\"name\": \"a\\\"b\", \"count\": 42, \"ratio\": 1.5, \"bad\": null, \"ok\": true, \"nested\": {\"k\": 3}}"
        );
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1, 2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
