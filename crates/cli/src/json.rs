//! Minimal JSON emission (no serde offline): string escaping plus a small
//! object/array builder producing deterministic, human-diffable output.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON object under construction.
#[derive(Debug, Default)]
pub struct Obj {
    fields: Vec<String>,
}

impl Obj {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push(format!("\"{}\": \"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an integer or other plain-`Display` numeric field.
    #[must_use]
    pub fn num<T: std::fmt::Display>(mut self, key: &str, value: T) -> Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a float field (`null` when non-finite, which JSON cannot carry).
    #[must_use]
    pub fn float(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push(format!("\"{}\": {rendered}", escape(key)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push(format!("\"{}\": {value}", escape(key)));
        self
    }

    /// Adds a pre-rendered JSON value (nested object or array).
    #[must_use]
    pub fn raw(mut self, key: &str, rendered: &str) -> Self {
        self.fields.push(format!("\"{}\": {rendered}", escape(key)));
        self
    }

    /// Renders the object.
    #[must_use]
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(", "))
    }
}

/// Renders a JSON array from pre-rendered element values.
#[must_use]
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials_and_control_chars() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn object_and_array_render() {
        let inner = Obj::new().num("k", 3).build();
        let obj = Obj::new()
            .str("name", "a\"b")
            .num("count", 42u64)
            .float("ratio", 1.5)
            .float("bad", f64::NAN)
            .bool("ok", true)
            .raw("nested", &inner)
            .build();
        assert_eq!(
            obj,
            "{\"name\": \"a\\\"b\", \"count\": 42, \"ratio\": 1.5, \"bad\": null, \"ok\": true, \"nested\": {\"k\": 3}}"
        );
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1, 2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
