//! Minimal long-option argument parsing (the build environment has no
//! crates.io access, so no `clap`): `--name value`, `--name=value`, bare
//! switches, positionals, and `-` as a positional meaning stdin/stdout.

use std::collections::BTreeMap;

/// Parsed command-line arguments for one subcommand.
#[derive(Debug, Default)]
pub struct Parsed {
    /// Non-option arguments, in order.
    pub positional: Vec<String>,
    switches: Vec<String>,
    values: BTreeMap<String, String>,
}

impl Parsed {
    /// Whether a boolean switch (e.g. `--json`) was given.
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The raw value of a `--name value` option, if given.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses an option's value, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the value does not parse.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --{name}")),
        }
    }

    /// Parses a required option's value.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the option is missing or malformed.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let raw = self
            .value(name)
            .ok_or_else(|| format!("missing required option --{name}"))?;
        raw.parse()
            .map_err(|_| format!("invalid value `{raw}` for --{name}"))
    }
}

/// Parses `args` against the allowed `switches` (boolean) and `valued`
/// (take one value) long options. Short aliases: `-o` for `--out`.
///
/// # Errors
///
/// Returns a usage message on unknown options or missing values.
pub fn parse(args: &[String], switches: &[&str], valued: &[&str]) -> Result<Parsed, String> {
    let mut parsed = Parsed::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let arg = if arg == "-o" { "--out" } else { arg.as_str() };
        if let Some(name) = arg.strip_prefix("--") {
            if let Some((key, value)) = name.split_once('=') {
                if valued.contains(&key) {
                    parsed.values.insert(key.to_string(), value.to_string());
                } else {
                    return Err(format!("unknown option --{key}"));
                }
            } else if switches.contains(&name) {
                parsed.switches.push(name.to_string());
            } else if valued.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} needs a value"))?;
                parsed.values.insert(name.to_string(), value.clone());
            } else {
                return Err(format!("unknown option --{name}"));
            }
        } else if arg.len() > 1 && arg.starts_with('-') {
            return Err(format!("unknown option {arg}"));
        } else {
            parsed.positional.push(arg.to_string());
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn positional_switch_and_value_forms() {
        let p = parse(
            &strs(&["a.mwhvc", "--json", "--eps", "0.5", "--threads=8", "-"]),
            &["json"],
            &["eps", "threads"],
        )
        .unwrap();
        assert_eq!(p.positional, vec!["a.mwhvc", "-"]);
        assert!(p.switch("json"));
        assert_eq!(p.value("eps"), Some("0.5"));
        assert_eq!(p.value_or::<usize>("threads", 1).unwrap(), 8);
        assert_eq!(p.value_or::<f64>("missing", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn o_is_an_alias_for_out() {
        let p = parse(&strs(&["-o", "x.mwhvc"]), &[], &["out"]).unwrap();
        assert_eq!(p.value("out"), Some("x.mwhvc"));
    }

    #[test]
    fn errors_are_usage_messages() {
        assert!(parse(&strs(&["--nope"]), &["json"], &[]).is_err());
        assert!(parse(&strs(&["--eps"]), &[], &["eps"]).is_err());
        assert!(parse(&strs(&["-x"]), &[], &[]).is_err());
        let p = parse(&strs(&["--eps", "zzz"]), &[], &["eps"]).unwrap();
        assert!(p.value_or::<f64>("eps", 1.0).is_err());
        assert!(p.required::<usize>("threads").is_err());
    }
}
