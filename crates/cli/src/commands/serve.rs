//! `dcover serve` — the streaming front end over
//! [`SolveService`](dcover_core::SolveService).
//!
//! Instances are read from **stdin as they arrive** (concatenated in the
//! [`dcover_hypergraph::format`] text format — a new `p …` header starts
//! the next record) and submitted to the service the moment they parse;
//! one JSON line per record goes to stdout **in completion order**,
//! tagged with a 0-based `seq` id in arrival order so a consumer can
//! re-associate responses with requests. Solves overlap with reading: a
//! slow instance does not block the results of fast ones submitted after
//! it.
//!
//! Two record kinds share the stream:
//!
//! * `p mwhvc n m` — a full instance, cold-solved as before;
//! * `p delta <base> <r> <a> <w> [eps]` — a **revision** of the record
//!   whose `seq` is `<base>`: the service applies the edge/weight delta
//!   to the cached predecessor and **warm-starts** the re-solve from its
//!   dual packing ([`SolveService::submit_delta`]). Deltas chain — a
//!   delta may reference an earlier delta's `seq`. If the base is still
//!   in flight when its delta arrives, the reader waits for it (a
//!   revision cannot be resolved before its predecessor). Result lines
//!   for revisions carry `"warm": true` and `"base": <seq>`.
//!
//! # Scheduling classes and deadlines
//!
//! `--class interactive|bulk` sets the stream-wide request class
//! (default `bulk`) and `--deadline-ms N` a stream-wide queue deadline;
//! both can be overridden **per record** with comment directives placed
//! inside the record (they are ordinary `c` comment lines, so the
//! instance format is unchanged):
//!
//! ```text
//! p mwhvc 3 2
//! c @class interactive
//! c @deadline-ms 50
//! v 10
//! …
//! ```
//!
//! Interactive records dequeue before queued bulk records (FIFO within a
//! class). Deadlines cover the record's **whole lifecycle**: a record
//! still queued when its deadline passes is discarded without occupying
//! a worker, and one already solving stops cooperatively at its next
//! round boundary — either way it resolves as an `"ok": false,
//! "expired": true` line.
//!
//! # Cancellation, aging, and shedding
//!
//! * `c @cancel SEQ` — a standalone comment line (outside record bodies
//!   it is processed the moment it is read, never buffered) abandons the
//!   in-flight record with reader seq `SEQ`: still queued, it is
//!   discarded; already solving, it stops at the next round boundary.
//!   The record resolves as an `"ok": false, "cancelled": true` line. A
//!   cancel that arrives after the solve finished is a no-op (the result
//!   line is emitted normally).
//! * `--bulk-max-wait-ms N` — anti-starvation aging: a bulk record
//!   queued at least `N` ms is dequeued ahead of younger interactive
//!   records, so an interactive flood cannot starve bulk forever.
//! * `--shed-target-ms N` — SLO-driven admission control: while the
//!   rolling interactive queue-wait p99 exceeds `N` ms, new bulk
//!   records are **shed** at the door (an `"ok": false, "shed": true`
//!   line; nothing is enqueued). Interactive records are never shed.
//!
//! # Exit-code contract
//!
//! The exit code reflects **failures only** (parse errors, solver
//! errors, panics). Expired, cancelled, and shed records are load
//! management doing its job — they are counted and reported separately
//! (summary line and `--metrics`) and never fail the exit code.
//!
//! # Latency accounting
//!
//! Every result line carries `queue_ms` (time waiting in the submission
//! queue) and `solve_ms` (time on the worker), fed from the service's
//! per-ticket metrics, plus `parse_ms` (reader-side parse time, spent
//! before submission). `latency_ms` is **defined as the sum
//! `queue_ms + solve_ms`** — earlier versions reported one
//! wall-clock-from-submission number that conflated queue wait with
//! solve time and dropped parse time entirely.
//!
//! With `--metrics`, one final `{"metrics": …}` JSON line follows the
//! last result: per-class
//! submitted/completed/expired/cancelled/shed/rejected counters and
//! queue-wait/solve-time quantiles (from the service's fixed-bucket
//! histograms), the queue-depth high-water mark, worker busy time, and
//! the rolling interactive queue-wait p99 (the shedding signal).
//!
//! The submission queue is bounded (`--queue`); when it fills, the reader
//! applies natural backpressure by blocking on `submit` until a worker
//! frees a slot — stdin is simply consumed more slowly instead of
//! buffering without limit.

use std::collections::{HashMap, VecDeque};
use std::io::BufRead as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcover_core::{
    ClassMetrics, LatencyHistogram, RequestClass, ServiceMetrics, SolveError, SolveService,
    SubmitError, SubmitOptions, Ticket,
};
use dcover_hypergraph::{format, Hypergraph};

use super::{default_threads, result_json, runtime, usage};
use crate::args;
use crate::json::Obj;
use crate::Failure;

/// One submitted record awaiting completion.
struct Pending {
    seq: u64,
    /// The service-side sequence id (what later deltas resolve against).
    service_seq: u64,
    /// The revision this record applied to, for warm submissions.
    base: Option<u64>,
    /// The ε this record was solved with (deltas may override the
    /// stream's ε per record).
    eps: f64,
    /// The request class this record was scheduled under.
    class: RequestClass,
    /// Reader-side parse time, spent before submission.
    parse_ms: f64,
    ticket: Ticket,
    g: Arc<Hypergraph>,
}

/// What became of an already-emitted record, kept so later delta records
/// can resolve their base `seq`.
enum Outcome {
    /// Solved fine; deltas may warm-start against this service seq. `eps`
    /// is the ε the record was actually solved with (a chained delta
    /// without its own override inherits it — not the stream default).
    Solved { service_seq: u64, eps: f64 },
    /// Parse, submit, solve, or deadline failure — deltas against it are
    /// refused.
    Failed,
}

/// How many record outcomes the reader retains for base resolution. The
/// service's own result cache (256 entries by default) is the real
/// warm-start horizon — outcomes past `OUTCOME_RETENTION` could only
/// ever resolve to `UnknownBase` anyway, and an unbounded map would grow
/// forever in the long-running server shape this command exists for.
const OUTCOME_RETENTION: usize = 1024;

/// Running totals for the stderr summary and the exit code. Only
/// `failed` affects the exit code: expired, cancelled, and shed records
/// are load management, counted and reported separately.
#[derive(Default)]
struct Totals {
    ok: usize,
    failed: usize,
    /// Deadline expiries (queued discard or mid-run stop).
    expired: usize,
    /// Records abandoned by a `c @cancel SEQ` directive.
    cancelled: usize,
    /// Bulk records refused at the door by SLO shedding.
    shed: usize,
    warm: usize,
}

impl Totals {
    fn records(&self) -> usize {
        self.ok + self.failed + self.expired + self.cancelled + self.shed
    }
}

/// The reader-side stream state: everything the emit/poll helpers touch.
struct Stream {
    service: SolveService,
    eps: f64,
    /// Stream-wide scheduling defaults (`--class` / `--deadline-ms`),
    /// overridable per record by `c @class` / `c @deadline-ms`
    /// directives.
    defaults: SubmitOptions,
    next_seq: u64,
    pending: Vec<Pending>,
    /// Bounded at [`OUTCOME_RETENTION`]; insertion order in `outcome_log`.
    outcomes: HashMap<u64, Outcome>,
    outcome_log: VecDeque<u64>,
    totals: Totals,
}

/// Recognizes a `c @cancel SEQ` directive line, returning the raw seq
/// operand (empty if missing).
fn cancel_directive(line: &str) -> Option<&str> {
    let mut words = line.split_whitespace();
    (words.next() == Some("c") && words.next() == Some("@cancel"))
        .then(|| words.next().unwrap_or(""))
}

/// Parses a `--class` style value.
fn parse_class(raw: &str) -> Result<RequestClass, String> {
    match raw {
        "interactive" => Ok(RequestClass::Interactive),
        "bulk" => Ok(RequestClass::Bulk),
        other => Err(format!(
            "unknown class `{other}` (expected `interactive` or `bulk`)"
        )),
    }
}

/// `dcover serve [--eps E] [--threads N] [--queue C] [--variant V]
/// [--partition P] [--class interactive|bulk] [--deadline-ms N]
/// [--bulk-max-wait-ms N] [--shed-target-ms N] [--metrics]`
pub fn serve(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(
        raw,
        &["metrics"],
        &[
            "eps",
            "threads",
            "queue",
            "variant",
            "partition",
            "class",
            "deadline-ms",
            "bulk-max-wait-ms",
            "shed-target-ms",
        ],
    )
    .map_err(usage)?;
    if !parsed.positional.is_empty() {
        return Err(usage(
            "serve reads instances from stdin and takes no positional arguments".to_string(),
        ));
    }
    let config = super::config_from(&parsed)?;
    let eps = config.epsilon();
    let threads: usize = parsed
        .value_or("threads", default_threads())
        .map_err(usage)?;
    if threads == 0 {
        return Err(usage("--threads must be at least 1".to_string()));
    }
    let queue: usize = parsed.value_or("queue", 4 * threads).map_err(usage)?;
    if queue == 0 {
        return Err(usage("--queue must be at least 1".to_string()));
    }
    let class = match parsed.value("class") {
        None => RequestClass::Bulk,
        Some(raw) => parse_class(raw).map_err(usage)?,
    };
    let ms_flag = |name: &str| -> Result<Option<Duration>, Failure> {
        match parsed.value(name) {
            None => Ok(None),
            Some(raw) => {
                let ms: u64 = raw
                    .parse()
                    .map_err(|_| usage(format!("invalid value `{raw}` for --{name}")))?;
                Ok(Some(Duration::from_millis(ms)))
            }
        }
    };
    let deadline = ms_flag("deadline-ms")?;
    let bulk_max_wait = ms_flag("bulk-max-wait-ms")?;
    let shed_target = ms_flag("shed-target-ms")?;
    let emit_metrics = parsed.switch("metrics");

    let mut service = SolveService::with_queue_capacity(config, threads, queue);
    if let Some(bound) = bulk_max_wait {
        service = service.with_bulk_max_wait(bound);
    }
    if let Some(target) = shed_target {
        service = service.with_shed_target(target);
    }
    let mut stream = Stream {
        service,
        eps,
        defaults: SubmitOptions { class, deadline },
        next_seq: 0,
        pending: Vec::new(),
        outcomes: HashMap::new(),
        outcome_log: VecDeque::new(),
        totals: Totals::default(),
    };

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut have_header = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| runtime(format!("reading stdin: {e}")))?;
        // Cancellation is time-sensitive: a `c @cancel SEQ` line acts the
        // moment it is read (even between the lines of a record) and is
        // never buffered into a record body.
        if let Some(target) = cancel_directive(&line) {
            stream.cancel(target);
            stream.poll_completed();
            continue;
        }
        let is_header = line.split_whitespace().next() == Some("p");
        if is_header && have_header {
            stream.submit(&buffer);
            buffer.clear();
            have_header = false;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        have_header |= is_header;
        // Emit whatever has completed since the last line (completion
        // order), without blocking the reader.
        stream.poll_completed();
    }
    if buffer.lines().any(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('c')
    }) {
        stream.submit(&buffer);
    }

    // Stdin is exhausted: drain the in-flight solves, still emitting in
    // completion order.
    while !stream.pending.is_empty() {
        stream.poll_completed();
        if !stream.pending.is_empty() {
            // wall-clock: poll backoff — tickets expose only non-blocking
            // try_wait, so the drain loop naps between sweeps instead of
            // burning a core.
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    stream.service.shutdown();

    if emit_metrics {
        println!(
            "{}",
            metrics_json(&stream.service.metrics(), &stream.totals)
        );
    }

    let totals = &stream.totals;
    eprintln!(
        "serve: {} records, {} ok ({} warm-started), {} expired, {} cancelled, {} shed, {} failed ({threads} threads, queue {queue})",
        totals.records(),
        totals.ok,
        totals.warm,
        totals.expired,
        totals.cancelled,
        totals.shed,
        totals.failed,
    );
    // Exit-code contract: only genuine failures (parse/solver errors,
    // panics) fail the run — expired, cancelled, and shed records are
    // load management, not errors.
    if totals.failed > 0 {
        return Err(runtime(format!("{} records failed", totals.failed)));
    }
    Ok(())
}

impl Stream {
    /// Parses one framed chunk (instance or delta record) and submits it;
    /// a parse or submit failure emits its error line immediately (it
    /// never occupies a queue slot).
    fn submit(&mut self, text: &str) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let opts = match self.record_options(text) {
            Ok(opts) => opts,
            Err(e) => return self.emit_error(seq, &format!("stdin record {seq}: {e}")),
        };
        let header_is_delta = text
            .lines()
            .find(|l| l.split_whitespace().next() == Some("p"))
            .is_some_and(format::is_delta_header);
        if header_is_delta {
            self.submit_delta(seq, text, opts);
        } else {
            self.submit_instance(seq, text, opts);
        }
    }

    /// Handles a `c @cancel SEQ` directive: cooperatively abandons the
    /// pending record with that reader seq (still queued → discarded;
    /// already solving → stopped at its next round boundary). A seq that
    /// is unknown or already resolved is a benign no-op — the cancel
    /// simply lost the race.
    fn cancel(&mut self, raw: &str) {
        match raw.parse::<u64>() {
            Ok(seq) => {
                if let Some(p) = self.pending.iter().find(|p| p.seq == seq) {
                    p.ticket.cancel();
                }
            }
            Err(_) => {
                eprintln!("serve: ignoring malformed directive `c @cancel {raw}` (seq expected)");
            }
        }
    }

    /// Resolves the record's scheduling envelope: the stream-wide
    /// `--class` / `--deadline-ms` defaults, overridden by `c @class` /
    /// `c @deadline-ms` comment directives inside the record.
    fn record_options(&self, text: &str) -> Result<SubmitOptions, String> {
        let mut opts = self.defaults;
        for line in text.lines() {
            let mut words = line.split_whitespace();
            if words.next() != Some("c") {
                continue;
            }
            match words.next() {
                Some("@class") => {
                    let value = words.next().ok_or("`c @class` needs a value")?;
                    opts.class = parse_class(value)?;
                }
                Some("@deadline-ms") => {
                    let value = words.next().ok_or("`c @deadline-ms` needs a value")?;
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("invalid `c @deadline-ms` value `{value}`"))?;
                    opts.deadline = Some(Duration::from_millis(ms));
                }
                _ => {} // ordinary comment
            }
        }
        Ok(opts)
    }

    fn submit_instance(&mut self, seq: u64, text: &str, opts: SubmitOptions) {
        let parse_start = Instant::now();
        let parsed = format::parse(text);
        let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
        match parsed {
            Ok(g) => {
                let g = Arc::new(g);
                match self.service.submit_with(Arc::clone(&g), self.eps, opts) {
                    Ok(ticket) => self.pending.push(Pending {
                        seq,
                        service_seq: ticket.seq(),
                        base: None,
                        eps: self.eps,
                        class: opts.class,
                        parse_ms,
                        ticket,
                        g,
                    }),
                    Err(SubmitError::Overloaded { .. }) => self.emit_shed(seq, opts.class),
                    Err(e) => self.emit_error(seq, &e.to_string()),
                }
            }
            Err(e) => self.emit_error(seq, &format!("stdin record {seq}: {e}")),
        }
    }

    /// A delta record: resolve the base (waiting out its solve if it is
    /// still in flight — a revision needs its predecessor's duals), then
    /// hand the delta to the service for a warm-started re-solve.
    fn submit_delta(&mut self, seq: u64, text: &str, opts: SubmitOptions) {
        let parse_start = Instant::now();
        let record = match format::parse_delta(text) {
            Ok(record) => record,
            Err(e) => return self.emit_error(seq, &format!("stdin record {seq}: {e}")),
        };
        let parse_ms = parse_start.elapsed().as_secs_f64() * 1e3;
        let base = record.base;
        if base >= seq {
            return self.emit_error(
                seq,
                &format!(
                    "delta record {seq} references base {base}, which is not an earlier record"
                ),
            );
        }
        // Wait until the base record has resolved one way or the other.
        while !self.outcomes.contains_key(&base) {
            if !self.pending.iter().any(|p| p.seq == base) {
                // Never submitted (its own parse/submit failed) — the
                // outcome map would have it; this is a stream bug guard.
                break;
            }
            self.poll_completed();
            // wall-clock: poll backoff between try_wait sweeps while the
            // base solve is still in flight (see the drain loop above).
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        let (service_seq, base_eps) = match self.outcomes.get(&base) {
            Some(Outcome::Solved { service_seq, eps }) => (*service_seq, *eps),
            Some(Outcome::Failed) => {
                return self.emit_error(
                    seq,
                    &format!("base record {base} failed; cannot warm-start from it"),
                )
            }
            None => {
                return self.emit_error(
                    seq,
                    &format!(
                        "unknown base record {base} (never solved, or past the retention window)"
                    ),
                )
            }
        };
        // Without an override the revision inherits the ε its *base* was
        // solved with — the same resolution the service applies — so the
        // emitted result line reports the ε actually used.
        let eps = record.epsilon.unwrap_or(base_eps);
        match self
            .service
            .submit_delta_with(service_seq, &record.delta, Some(eps), opts)
        {
            Ok((ticket, g)) => self.pending.push(Pending {
                seq,
                service_seq: ticket.seq(),
                base: Some(base),
                eps,
                class: opts.class,
                parse_ms,
                ticket,
                g,
            }),
            Err(SubmitError::Overloaded { .. }) => self.emit_shed(seq, opts.class),
            Err(e) => self.emit_error(seq, &e.to_string()),
        }
    }

    /// Emits every finished solve (non-blocking); unfinished tickets stay.
    fn poll_completed(&mut self) {
        let drained: Vec<Pending> = self.pending.drain(..).collect();
        let mut still = Vec::with_capacity(drained.len());
        for entry in drained {
            let Pending {
                seq,
                service_seq,
                base,
                eps,
                class,
                parse_ms,
                ticket,
                g,
            } = entry;
            match ticket.try_wait_timed() {
                Ok((outcome, timing)) => {
                    let queue_ms = timing.queue.as_secs_f64() * 1e3;
                    let solve_ms = timing.run.as_secs_f64() * 1e3;
                    match outcome {
                        Ok(result) => {
                            let mut line = Obj::new()
                                .num("seq", seq)
                                .bool("ok", true)
                                .num("n", g.n())
                                .num("m", g.m())
                                .num("rank", g.rank())
                                .float("epsilon", eps)
                                .str("class", class.name())
                                .bool("warm", base.is_some());
                            if let Some(base) = base {
                                line = line.num("base", base);
                            }
                            // latency_ms is *defined* as queue_ms +
                            // solve_ms; parse_ms is reader-side time spent
                            // before submission and reported separately.
                            let line = line
                                .raw("result", &result_json(&result))
                                .float("queue_ms", queue_ms)
                                .float("solve_ms", solve_ms)
                                .float("latency_ms", queue_ms + solve_ms)
                                .float("parse_ms", parse_ms)
                                .build();
                            println!("{line}");
                            self.totals.ok += 1;
                            if base.is_some() {
                                self.totals.warm += 1;
                            }
                            self.record_outcome(seq, Outcome::Solved { service_seq, eps });
                        }
                        Err(SolveError::Expired { .. }) => {
                            self.emit_expired(seq, class, queue_ms);
                        }
                        Err(SolveError::Cancelled) => {
                            self.emit_cancelled(seq, class, queue_ms);
                        }
                        Err(e) => {
                            self.emit_error(seq, &e.to_string());
                        }
                    }
                }
                Err(ticket) => still.push(Pending {
                    seq,
                    service_seq,
                    base,
                    eps,
                    class,
                    parse_ms,
                    ticket,
                    g,
                }),
            }
        }
        self.pending = still;
    }

    fn emit_error(&mut self, seq: u64, message: &str) {
        let line = Obj::new()
            .num("seq", seq)
            .bool("ok", false)
            .str("error", message)
            .build();
        println!("{line}");
        self.totals.failed += 1;
        self.record_outcome(seq, Outcome::Failed);
    }

    /// A deadline miss: typed load management, reported with its own
    /// field (and counted apart from failures — it does not fail the
    /// exit code).
    fn emit_expired(&mut self, seq: u64, class: RequestClass, queue_ms: f64) {
        let line = Obj::new()
            .num("seq", seq)
            .bool("ok", false)
            .bool("expired", true)
            .str("class", class.name())
            .float("queue_ms", queue_ms)
            .str(
                "error",
                "deadline expired (discarded while queued, or stopped at a round boundary)",
            )
            .build();
        println!("{line}");
        self.totals.expired += 1;
        self.record_outcome(seq, Outcome::Failed);
    }

    /// A `c @cancel` that landed: caller-requested abandonment, counted
    /// apart from failures — it does not fail the exit code.
    fn emit_cancelled(&mut self, seq: u64, class: RequestClass, queue_ms: f64) {
        let line = Obj::new()
            .num("seq", seq)
            .bool("ok", false)
            .bool("cancelled", true)
            .str("class", class.name())
            .float("queue_ms", queue_ms)
            .str("error", "cancelled by `c @cancel` directive")
            .build();
        println!("{line}");
        self.totals.cancelled += 1;
        self.record_outcome(seq, Outcome::Failed);
    }

    /// A bulk record refused at the door by SLO shedding: overload
    /// protection, counted apart from failures — it does not fail the
    /// exit code.
    fn emit_shed(&mut self, seq: u64, class: RequestClass) {
        let line = Obj::new()
            .num("seq", seq)
            .bool("ok", false)
            .bool("shed", true)
            .str("class", class.name())
            .str(
                "error",
                "shed at admission: interactive queue-wait p99 over the shed target",
            )
            .build();
        println!("{line}");
        self.totals.shed += 1;
        self.record_outcome(seq, Outcome::Failed);
    }

    /// Records a record's outcome, evicting the oldest beyond
    /// [`OUTCOME_RETENTION`] so a long-running stream stays bounded.
    fn record_outcome(&mut self, seq: u64, outcome: Outcome) {
        if self.outcomes.insert(seq, outcome).is_none() {
            self.outcome_log.push_back(seq);
            while self.outcome_log.len() > OUTCOME_RETENTION {
                if let Some(old) = self.outcome_log.pop_front() {
                    self.outcomes.remove(&old);
                }
            }
        }
    }
}

/// Renders a latency histogram as quantile fields (milliseconds; `null`
/// when the histogram is empty or the quantile falls in the open-ended
/// last bucket).
fn histogram_json(h: &LatencyHistogram) -> String {
    let q = |q: f64| -> f64 {
        match h.quantile(q) {
            Some(d) if d != Duration::MAX => d.as_secs_f64() * 1e3,
            _ => f64::NAN, // rendered as null by Obj::float
        }
    };
    Obj::new()
        .num("count", h.count())
        .float("p50_ms", q(0.5))
        .float("p90_ms", q(0.9))
        .float("p99_ms", q(0.99))
        .build()
}

fn class_json(c: &ClassMetrics) -> String {
    Obj::new()
        .num("submitted", c.submitted)
        .num("completed", c.completed)
        .num("expired", c.expired)
        .num("cancelled", c.cancelled)
        .num("shed", c.shed)
        .num("rejected", c.rejected)
        .num("panicked", c.panicked)
        .num("intra_chunk_messages", c.intra_chunk_messages)
        .num("cross_chunk_messages", c.cross_chunk_messages)
        .raw("queue_wait", &histogram_json(&c.queue_wait))
        .raw("solve_time", &histogram_json(&c.run_time))
        .build()
}

/// The `--metrics` end-of-stream summary line.
fn metrics_json(m: &ServiceMetrics, totals: &Totals) -> String {
    let inner = Obj::new()
        .num("records", totals.records())
        .num("ok", totals.ok)
        .num("warm", totals.warm)
        .num("expired", totals.expired)
        .num("cancelled", totals.cancelled)
        .num("shed", totals.shed)
        .num("failed", totals.failed)
        .raw("interactive", &class_json(&m.interactive))
        .raw("bulk", &class_json(&m.bulk))
        .num("queue_depth_high_water", m.queue_depth_high_water)
        .float("worker_busy_ms", m.worker_busy.as_secs_f64() * 1e3)
        .float(
            "interactive_wait_p99_ms",
            m.interactive_wait_p99
                .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
        )
        .build();
    Obj::new().raw("metrics", &inner).build()
}
