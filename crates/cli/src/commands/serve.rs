//! `dcover serve` — the streaming front end over
//! [`SolveService`](dcover_core::SolveService).
//!
//! Instances are read from **stdin as they arrive** (concatenated in the
//! [`dcover_hypergraph::format`] text format — a new `p mwhvc n m` header
//! starts the next instance) and submitted to the service the moment they
//! parse; one JSON line per instance goes to stdout **in completion
//! order**, tagged with a 0-based `seq` id in arrival order so a consumer
//! can re-associate responses with requests. Solves overlap with reading:
//! a slow instance does not block the results of fast ones submitted
//! after it.
//!
//! The submission queue is bounded (`--queue`); when it fills, the reader
//! applies natural backpressure by blocking on `submit` until a worker
//! frees a slot — stdin is simply consumed more slowly instead of
//! buffering without limit.

use std::io::BufRead as _;
use std::sync::Arc;
use std::time::Instant;

use dcover_core::{SolveService, Ticket};
use dcover_hypergraph::{format, Hypergraph};

use super::{default_threads, result_json, runtime, usage};
use crate::args;
use crate::json::Obj;
use crate::Failure;

/// One submitted instance awaiting completion.
struct Pending {
    seq: u64,
    ticket: Ticket,
    g: Arc<Hypergraph>,
    submitted: Instant,
}

/// Running totals for the stderr summary and the exit code.
#[derive(Default)]
struct Totals {
    ok: usize,
    failed: usize,
}

/// `dcover serve [--eps E] [--threads N] [--queue C] [--variant V]`
pub fn serve(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(raw, &[], &["eps", "threads", "queue", "variant"]).map_err(usage)?;
    if !parsed.positional.is_empty() {
        return Err(usage(
            "serve reads instances from stdin and takes no positional arguments".to_string(),
        ));
    }
    let config = super::config_from(&parsed)?;
    let eps = config.epsilon();
    let threads: usize = parsed
        .value_or("threads", default_threads())
        .map_err(usage)?;
    if threads == 0 {
        return Err(usage("--threads must be at least 1".to_string()));
    }
    let queue: usize = parsed.value_or("queue", 4 * threads).map_err(usage)?;
    if queue == 0 {
        return Err(usage("--queue must be at least 1".to_string()));
    }

    let service = SolveService::with_queue_capacity(config, threads, queue);
    let mut pending: Vec<Pending> = Vec::new();
    let mut totals = Totals::default();
    let mut next_seq: u64 = 0;

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let mut have_header = false;
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| runtime(format!("reading stdin: {e}")))?;
        let is_header = line.split_whitespace().next() == Some("p");
        if is_header && have_header {
            submit(
                &service,
                &buffer,
                eps,
                &mut next_seq,
                &mut pending,
                &mut totals,
            );
            buffer.clear();
            have_header = false;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        have_header |= is_header;
        // Emit whatever has completed since the last line (completion
        // order), without blocking the reader.
        poll_completed(&mut pending, eps, &mut totals);
    }
    if buffer.lines().any(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('c')
    }) {
        submit(
            &service,
            &buffer,
            eps,
            &mut next_seq,
            &mut pending,
            &mut totals,
        );
    }

    // Stdin is exhausted: drain the in-flight solves, still emitting in
    // completion order.
    while !pending.is_empty() {
        poll_completed(&mut pending, eps, &mut totals);
        if !pending.is_empty() {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    service.shutdown();

    eprintln!(
        "serve: {} instances, {} ok, {} failed ({threads} threads, queue {queue})",
        totals.ok + totals.failed,
        totals.ok,
        totals.failed,
    );
    if totals.failed > 0 {
        return Err(runtime(format!("{} instances failed", totals.failed)));
    }
    Ok(())
}

/// Parses one framed chunk and submits it; a parse failure emits its
/// error line immediately (it never occupies a queue slot).
fn submit(
    service: &SolveService,
    text: &str,
    eps: f64,
    next_seq: &mut u64,
    pending: &mut Vec<Pending>,
    totals: &mut Totals,
) {
    let seq = *next_seq;
    *next_seq += 1;
    match format::parse(text) {
        Ok(g) => {
            let g = Arc::new(g);
            match service.submit(Arc::clone(&g), eps) {
                Ok(ticket) => pending.push(Pending {
                    seq,
                    ticket,
                    g,
                    submitted: Instant::now(),
                }),
                Err(e) => emit_error(seq, &e.to_string(), totals),
            }
        }
        Err(e) => emit_error(seq, &format!("stdin instance {seq}: {e}"), totals),
    }
}

/// Emits every finished solve (non-blocking); unfinished tickets stay.
fn poll_completed(pending: &mut Vec<Pending>, eps: f64, totals: &mut Totals) {
    let mut still = Vec::with_capacity(pending.len());
    for entry in pending.drain(..) {
        let Pending {
            seq,
            ticket,
            g,
            submitted,
        } = entry;
        match ticket.try_wait() {
            Ok(outcome) => {
                let wall_ms = submitted.elapsed().as_secs_f64() * 1e3;
                match outcome {
                    Ok(result) => {
                        let line = Obj::new()
                            .num("seq", seq)
                            .bool("ok", true)
                            .num("n", g.n())
                            .num("m", g.m())
                            .num("rank", g.rank())
                            .float("epsilon", eps)
                            .raw("result", &result_json(&result))
                            .float("latency_ms", wall_ms)
                            .build();
                        println!("{line}");
                        totals.ok += 1;
                    }
                    Err(e) => emit_error(seq, &e.to_string(), totals),
                }
            }
            Err(ticket) => still.push(Pending {
                seq,
                ticket,
                g,
                submitted,
            }),
        }
    }
    *pending = still;
}

fn emit_error(seq: u64, message: &str, totals: &mut Totals) {
    let line = Obj::new()
        .num("seq", seq)
        .bool("ok", false)
        .str("error", message)
        .build();
    println!("{line}");
    totals.failed += 1;
}
