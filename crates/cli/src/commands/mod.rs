//! The `dcover` subcommands: `solve` and `batch` live here; the streaming
//! server (`serve`), the certificate checker (`verify`), and the instance
//! generators (`gen`) have their own submodules.

pub mod gen;
pub mod serve;
pub mod verify;

use std::io::Read as _;
use std::time::Instant;

use dcover_core::{
    CoverResult, MwhvcConfig, MwhvcSolver, PartitionPolicy, SolveSession, Variant, WarmState,
};
use dcover_hypergraph::{format, Hypergraph};

use crate::args;
use crate::json::{array, Obj, Value};
use crate::Failure;

pub(crate) fn usage(msg: String) -> Failure {
    Failure::Usage(msg)
}

pub(crate) fn runtime(msg: String) -> Failure {
    Failure::Runtime(msg)
}

/// Reads an instance from a path (or stdin for `-`).
pub(crate) fn read_instance(path: &str) -> Result<Hypergraph, Failure> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| runtime(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| runtime(format!("{path}: {e}")))?
    };
    format::parse(&text).map_err(|e| runtime(format!("{path}: {e}")))
}

pub(crate) fn config_from(parsed: &args::Parsed) -> Result<MwhvcConfig, Failure> {
    let eps: f64 = parsed.value_or("eps", 0.5).map_err(usage)?;
    let mut config = MwhvcConfig::new(eps).map_err(|e| usage(e.to_string()))?;
    match parsed.value("variant") {
        None | Some("standard") => {}
        Some("half-bid") => config = config.with_variant(Variant::HalfBid),
        Some(other) => {
            return Err(usage(format!(
                "unknown variant `{other}` (expected `standard` or `half-bid`)"
            )))
        }
    }
    if let Some(raw) = parsed.value("partition") {
        let policy: PartitionPolicy = raw.parse().map_err(usage)?;
        config = config.with_partition(policy);
    }
    Ok(config)
}

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

pub(crate) fn instance_json(file: &str, g: &Hypergraph) -> String {
    Obj::new()
        .str("file", file)
        .num("n", g.n())
        .num("m", g.m())
        .num("rank", g.rank())
        .num("max_degree", g.max_degree())
        .build()
}

/// The solution part of a report: summary numbers plus the cover, the
/// dual certificate, and the vertex levels, so a report is self-contained
/// — `dcover verify` re-checks it against the instance and `dcover solve
/// --warm-from` seeds an incremental re-solve from it.
pub(crate) fn result_json(r: &CoverResult) -> String {
    let cover = array(r.cover.iter().map(|v| v.index().to_string()));
    let duals = array(r.duals.iter().map(|d| {
        if d.is_finite() {
            format!("{d}")
        } else {
            "null".to_string()
        }
    }));
    let levels = array(r.levels.iter().map(u32::to_string));
    Obj::new()
        .num("weight", r.weight)
        .num("cover_size", r.cover.len())
        .float("dual_total", r.dual_total)
        .float("ratio_upper_bound", r.ratio_upper_bound())
        .num("iterations", r.iterations)
        .num("rounds", r.rounds())
        .num("messages", r.report.total_messages)
        .num("bits", r.report.total_bits)
        .num("max_link_bits", r.report.max_link_bits)
        .num("intra_chunk_messages", r.report.intra_chunk_messages)
        .num("cross_chunk_messages", r.report.cross_chunk_messages)
        .raw("cover", &cover)
        .raw("duals", &duals)
        .raw("levels", &levels)
        .build()
}

fn print_result_human(file: &str, g: &Hypergraph, r: &CoverResult, eps: f64, wall_ms: f64) {
    println!(
        "instance  : {file} (n={} m={} rank={} max_degree={})",
        g.n(),
        g.m(),
        g.rank(),
        g.max_degree()
    );
    println!(
        "epsilon   : {eps} (guarantee f+eps = {})",
        g.rank() as f64 + eps
    );
    println!(
        "cover     : weight {}, {} of {} vertices",
        r.weight,
        r.cover.len(),
        g.n()
    );
    println!(
        "certified : ratio <= {:.4} (dual lower bound {:.3})",
        r.ratio_upper_bound(),
        r.dual_total
    );
    println!(
        "rounds    : {} ({} iterations), {} messages, {} bits (max {} bits/link/round)",
        r.rounds(),
        r.iterations,
        r.report.total_messages,
        r.report.total_bits,
        r.report.max_link_bits
    );
    println!("time      : {wall_ms:.2} ms");
}

/// Reads the dual vector out of a report's `result` (must be all finite
/// numbers). Shared between `verify` and `solve --warm-from`.
pub(crate) fn extract_duals(value: Option<&Value>) -> Result<Vec<f64>, Failure> {
    let items = value
        .and_then(Value::as_array)
        .ok_or_else(|| runtime("report has no `duals` array in its result".to_string()))?;
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|d| d.is_finite())
                .ok_or_else(|| runtime("non-finite entry in `duals`".to_string()))
        })
        .collect()
}

/// Reads the vertex-level vector out of a report's `result` (must be
/// non-negative integers).
pub(crate) fn extract_levels(value: Option<&Value>) -> Result<Vec<u32>, Failure> {
    let items = value.and_then(Value::as_array).ok_or_else(|| {
        runtime(
            "report has no `levels` array in its result (produced before warm-start support?)"
                .to_string(),
        )
    })?;
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|x| x.fract() == 0.0 && *x >= 0.0)
                .map(|x| x as u32)
                .ok_or_else(|| runtime("non-integer entry in `levels`".to_string()))
        })
        .collect()
}

/// Loads a warm seed (duals + levels, and the ε the report was produced
/// with) out of a `--json` solve/serve report.
fn warm_from_report(path: &str) -> Result<(WarmState, Option<f64>), Failure> {
    let text = std::fs::read_to_string(path).map_err(|e| runtime(format!("{path}: {e}")))?;
    // Serve reports are JSONL; take the (single) line the caller chose.
    let report =
        crate::json::parse(text.trim()).map_err(|e| runtime(format!("{path}: bad JSON: {e}")))?;
    let result = report.get("result").unwrap_or(&report);
    let duals = extract_duals(result.get("duals")).map_err(|e| prefix_path(path, e))?;
    let levels = extract_levels(result.get("levels")).map_err(|e| prefix_path(path, e))?;
    let epsilon = report.get("epsilon").and_then(Value::as_f64);
    Ok((WarmState::from_parts(duals, levels), epsilon))
}

fn prefix_path(path: &str, failure: Failure) -> Failure {
    match failure {
        Failure::Runtime(m) => Failure::Runtime(format!("{path}: {m}")),
        Failure::Usage(m) => Failure::Usage(format!("{path}: {m}")),
    }
}

/// `dcover solve FILE [--eps E] [--threads N] [--variant V]
/// [--partition P] [--warm-from REPORT] [--json]`
pub fn solve(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(
        raw,
        &["json"],
        &["eps", "threads", "variant", "partition", "warm-from"],
    )
    .map_err(usage)?;
    let json = parsed.switch("json");
    solve_inner(&parsed).inspect_err(|failure| {
        // With --json, failures become machine-readable error objects on
        // stdout (the exit code still signals them), so a pipeline driving
        // many solves can parse every outcome uniformly.
        if json {
            let (kind, msg) = match failure {
                Failure::Usage(m) => ("usage", m),
                Failure::Runtime(m) => ("runtime", m),
            };
            println!(
                "{}",
                Obj::new()
                    .bool("ok", false)
                    .str("kind", kind)
                    .str("error", msg)
                    .build()
            );
        }
    })
}

fn solve_inner(parsed: &args::Parsed) -> Result<(), Failure> {
    let [file] = parsed.positional.as_slice() else {
        return Err(usage(format!(
            "solve takes exactly one instance file, got {}",
            parsed.positional.len()
        )));
    };
    let warm = match parsed.value("warm-from") {
        Some(report_path) => Some(warm_from_report(report_path)?),
        None => None,
    };
    if warm.is_some() && parsed.value_or("threads", 0).map_err(usage)? > 1 {
        return Err(usage(
            "--warm-from runs on the sequential scheduler; drop --threads (or use a cold solve \
             for chunk parallelism)"
                .to_string(),
        ));
    }
    let mut config = config_from(parsed)?;
    // Without an explicit --eps, a warm re-solve inherits the ε of the
    // report it seeds from, preserving the (f + ε) guarantee of the chain.
    if parsed.value("eps").is_none() {
        if let Some((_, Some(report_eps))) = &warm {
            config = config
                .with_epsilon(*report_eps)
                .map_err(|e| runtime(format!("report epsilon: {e}")))?;
        }
    }
    let eps = config.epsilon();
    let threads: usize = parsed.value_or("threads", 0).map_err(usage)?;
    let g = read_instance(file)?;
    let solver = MwhvcSolver::new(config);
    let start = Instant::now();
    let result = match &warm {
        Some((state, _)) => solver.solve_warm(&g, state),
        None if threads <= 1 => solver.solve(&g),
        None => solver.solve_parallel(&g, threads),
    }
    .map_err(|e| runtime(format!("{file}: {e}")))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if parsed.switch("json") {
        let report = Obj::new()
            .raw("instance", &instance_json(file, &g))
            .float("epsilon", eps)
            .num("threads", threads.max(1))
            .bool("warm", warm.is_some())
            .raw("result", &result_json(&result))
            .float("wall_ms", wall_ms)
            .build();
        println!("{report}");
    } else {
        if warm.is_some() {
            println!(
                "warm-start: seeded from {}",
                parsed.value("warm-from").unwrap_or("-")
            );
        }
        print_result_human(file, &g, &result, eps, wall_ms);
    }
    Ok(())
}

/// `dcover batch FILE... [--eps E] [--threads N] [--variant V]
/// [--partition P] [--json]`
pub fn batch(raw: &[String]) -> Result<(), Failure> {
    let parsed =
        args::parse(raw, &["json"], &["eps", "threads", "variant", "partition"]).map_err(usage)?;
    if parsed.positional.is_empty() {
        return Err(usage("batch needs at least one instance file".to_string()));
    }
    let config = config_from(&parsed)?;
    let eps = config.epsilon();
    let threads: usize = parsed
        .value_or("threads", default_threads())
        .map_err(usage)?;
    if threads == 0 {
        return Err(usage("--threads must be at least 1".to_string()));
    }

    // Parse everything up front; a file that does not parse is a failed
    // entry, not a fatal error (the serving layer must not be crashable by
    // one bad input). Parsed instances move straight into the solvable
    // list — only the per-file parse outcome is kept for re-alignment.
    let mut solvable: Vec<Hypergraph> = Vec::new();
    let mut parse_errors: Vec<Option<String>> = Vec::new();
    for file in &parsed.positional {
        match read_instance(file) {
            Ok(g) => {
                solvable.push(g);
                parse_errors.push(None);
            }
            Err(Failure::Runtime(msg) | Failure::Usage(msg)) => {
                parse_errors.push(Some(msg));
            }
        }
    }

    let mut session = SolveSession::new(config, threads);
    let start = Instant::now();
    let solved = session.solve_batch_owned(solvable);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Re-align solved results with the original file list.
    let mut solved_iter = solved.into_iter();
    let mut entries: Vec<(String, Result<CoverResult, String>)> = Vec::new();
    for (file, parse_error) in parsed.positional.iter().zip(&parse_errors) {
        let outcome = match parse_error {
            None => solved_iter
                .next()
                .expect("one result per parsed instance")
                .map_err(|e| e.to_string()),
            Some(msg) => Err(msg.clone()),
        };
        entries.push((file.clone(), outcome));
    }

    let ok = entries.iter().filter(|(_, r)| r.is_ok()).count();
    let failed = entries.len() - ok;
    let total_weight: u64 = entries
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().map(|c| c.weight))
        .sum();
    let throughput = if wall_ms > 0.0 {
        ok as f64 / (wall_ms / 1e3)
    } else {
        f64::INFINITY
    };

    if parsed.switch("json") {
        let items = array(entries.iter().map(|(file, outcome)| {
            match outcome {
                Ok(r) => Obj::new()
                    .str("file", file)
                    .bool("ok", true)
                    .raw("result", &result_json(r))
                    .build(),
                Err(msg) => Obj::new()
                    .str("file", file)
                    .bool("ok", false)
                    .str("error", msg)
                    .build(),
            }
        }));
        let report = Obj::new()
            .num("instances", entries.len())
            .num("ok", ok)
            .num("failed", failed)
            .float("epsilon", eps)
            .num("threads", threads)
            .num("total_weight", total_weight)
            .float("wall_ms", wall_ms)
            .float("instances_per_sec", throughput)
            .raw("results", &items)
            .build();
        println!("{report}");
    } else {
        for (i, (file, outcome)) in entries.iter().enumerate() {
            match outcome {
                Ok(r) => println!(
                    "[{i}] {file}: weight {}, {} rounds, ratio <= {:.4}",
                    r.weight,
                    r.rounds(),
                    r.ratio_upper_bound()
                ),
                Err(msg) => println!("[{i}] {file}: FAILED ({msg})"),
            }
        }
        println!(
            "batch     : {} instances, {ok} ok, {failed} failed, {wall_ms:.2} ms, {throughput:.1} instances/sec, {threads} threads",
            entries.len()
        );
    }
    if failed > 0 {
        return Err(runtime(format!(
            "{failed} of {} instances failed",
            entries.len()
        )));
    }
    Ok(())
}
