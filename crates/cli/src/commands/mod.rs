//! The `dcover` subcommands: `solve` and `batch` live here; the streaming
//! server (`serve`), the certificate checker (`verify`), and the instance
//! generators (`gen`) have their own submodules.

pub mod gen;
pub mod serve;
pub mod verify;

use std::io::Read as _;
use std::time::Instant;

use dcover_core::{CoverResult, MwhvcConfig, MwhvcSolver, SolveSession, Variant};
use dcover_hypergraph::{format, Hypergraph};

use crate::args;
use crate::json::{array, Obj};
use crate::Failure;

pub(crate) fn usage(msg: String) -> Failure {
    Failure::Usage(msg)
}

pub(crate) fn runtime(msg: String) -> Failure {
    Failure::Runtime(msg)
}

/// Reads an instance from a path (or stdin for `-`).
pub(crate) fn read_instance(path: &str) -> Result<Hypergraph, Failure> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| runtime(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| runtime(format!("{path}: {e}")))?
    };
    format::parse(&text).map_err(|e| runtime(format!("{path}: {e}")))
}

pub(crate) fn config_from(parsed: &args::Parsed) -> Result<MwhvcConfig, Failure> {
    let eps: f64 = parsed.value_or("eps", 0.5).map_err(usage)?;
    let mut config = MwhvcConfig::new(eps).map_err(|e| usage(e.to_string()))?;
    match parsed.value("variant") {
        None | Some("standard") => {}
        Some("half-bid") => config = config.with_variant(Variant::HalfBid),
        Some(other) => {
            return Err(usage(format!(
                "unknown variant `{other}` (expected `standard` or `half-bid`)"
            )))
        }
    }
    Ok(config)
}

pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

pub(crate) fn instance_json(file: &str, g: &Hypergraph) -> String {
    Obj::new()
        .str("file", file)
        .num("n", g.n())
        .num("m", g.m())
        .num("rank", g.rank())
        .num("max_degree", g.max_degree())
        .build()
}

/// The solution part of a report: summary numbers plus the cover and the
/// dual certificate, so a report is self-contained and `dcover verify`
/// can re-check it against the instance.
pub(crate) fn result_json(r: &CoverResult) -> String {
    let cover = array(r.cover.iter().map(|v| v.index().to_string()));
    let duals = array(r.duals.iter().map(|d| {
        if d.is_finite() {
            format!("{d}")
        } else {
            "null".to_string()
        }
    }));
    Obj::new()
        .num("weight", r.weight)
        .num("cover_size", r.cover.len())
        .float("dual_total", r.dual_total)
        .float("ratio_upper_bound", r.ratio_upper_bound())
        .num("iterations", r.iterations)
        .num("rounds", r.rounds())
        .num("messages", r.report.total_messages)
        .num("bits", r.report.total_bits)
        .num("max_link_bits", r.report.max_link_bits)
        .raw("cover", &cover)
        .raw("duals", &duals)
        .build()
}

fn print_result_human(file: &str, g: &Hypergraph, r: &CoverResult, eps: f64, wall_ms: f64) {
    println!(
        "instance  : {file} (n={} m={} rank={} max_degree={})",
        g.n(),
        g.m(),
        g.rank(),
        g.max_degree()
    );
    println!(
        "epsilon   : {eps} (guarantee f+eps = {})",
        g.rank() as f64 + eps
    );
    println!(
        "cover     : weight {}, {} of {} vertices",
        r.weight,
        r.cover.len(),
        g.n()
    );
    println!(
        "certified : ratio <= {:.4} (dual lower bound {:.3})",
        r.ratio_upper_bound(),
        r.dual_total
    );
    println!(
        "rounds    : {} ({} iterations), {} messages, {} bits (max {} bits/link/round)",
        r.rounds(),
        r.iterations,
        r.report.total_messages,
        r.report.total_bits,
        r.report.max_link_bits
    );
    println!("time      : {wall_ms:.2} ms");
}

/// `dcover solve FILE [--eps E] [--threads N] [--variant V] [--json]`
pub fn solve(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(raw, &["json"], &["eps", "threads", "variant"]).map_err(usage)?;
    let [file] = parsed.positional.as_slice() else {
        return Err(usage(format!(
            "solve takes exactly one instance file, got {}",
            parsed.positional.len()
        )));
    };
    let config = config_from(&parsed)?;
    let eps = config.epsilon();
    let threads: usize = parsed.value_or("threads", 0).map_err(usage)?;
    let g = read_instance(file)?;
    let solver = MwhvcSolver::new(config);
    let start = Instant::now();
    let result = if threads <= 1 {
        solver.solve(&g)
    } else {
        solver.solve_parallel(&g, threads)
    }
    .map_err(|e| runtime(format!("{file}: {e}")))?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    if parsed.switch("json") {
        let report = Obj::new()
            .raw("instance", &instance_json(file, &g))
            .float("epsilon", eps)
            .num("threads", threads.max(1))
            .raw("result", &result_json(&result))
            .float("wall_ms", wall_ms)
            .build();
        println!("{report}");
    } else {
        print_result_human(file, &g, &result, eps, wall_ms);
    }
    Ok(())
}

/// `dcover batch FILE... [--eps E] [--threads N] [--variant V] [--json]`
pub fn batch(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(raw, &["json"], &["eps", "threads", "variant"]).map_err(usage)?;
    if parsed.positional.is_empty() {
        return Err(usage("batch needs at least one instance file".to_string()));
    }
    let config = config_from(&parsed)?;
    let eps = config.epsilon();
    let threads: usize = parsed
        .value_or("threads", default_threads())
        .map_err(usage)?;
    if threads == 0 {
        return Err(usage("--threads must be at least 1".to_string()));
    }

    // Parse everything up front; a file that does not parse is a failed
    // entry, not a fatal error (the serving layer must not be crashable by
    // one bad input). Parsed instances move straight into the solvable
    // list — only the per-file parse outcome is kept for re-alignment.
    let mut solvable: Vec<Hypergraph> = Vec::new();
    let mut parse_errors: Vec<Option<String>> = Vec::new();
    for file in &parsed.positional {
        match read_instance(file) {
            Ok(g) => {
                solvable.push(g);
                parse_errors.push(None);
            }
            Err(Failure::Runtime(msg) | Failure::Usage(msg)) => {
                parse_errors.push(Some(msg));
            }
        }
    }

    let mut session = SolveSession::new(config, threads);
    let start = Instant::now();
    let solved = session.solve_batch_owned(solvable);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // Re-align solved results with the original file list.
    let mut solved_iter = solved.into_iter();
    let mut entries: Vec<(String, Result<CoverResult, String>)> = Vec::new();
    for (file, parse_error) in parsed.positional.iter().zip(&parse_errors) {
        let outcome = match parse_error {
            None => solved_iter
                .next()
                .expect("one result per parsed instance")
                .map_err(|e| e.to_string()),
            Some(msg) => Err(msg.clone()),
        };
        entries.push((file.clone(), outcome));
    }

    let ok = entries.iter().filter(|(_, r)| r.is_ok()).count();
    let failed = entries.len() - ok;
    let total_weight: u64 = entries
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().map(|c| c.weight))
        .sum();
    let throughput = if wall_ms > 0.0 {
        ok as f64 / (wall_ms / 1e3)
    } else {
        f64::INFINITY
    };

    if parsed.switch("json") {
        let items = array(entries.iter().map(|(file, outcome)| {
            match outcome {
                Ok(r) => Obj::new()
                    .str("file", file)
                    .bool("ok", true)
                    .raw("result", &result_json(r))
                    .build(),
                Err(msg) => Obj::new()
                    .str("file", file)
                    .bool("ok", false)
                    .str("error", msg)
                    .build(),
            }
        }));
        let report = Obj::new()
            .num("instances", entries.len())
            .num("ok", ok)
            .num("failed", failed)
            .float("epsilon", eps)
            .num("threads", threads)
            .num("total_weight", total_weight)
            .float("wall_ms", wall_ms)
            .float("instances_per_sec", throughput)
            .raw("results", &items)
            .build();
        println!("{report}");
    } else {
        for (i, (file, outcome)) in entries.iter().enumerate() {
            match outcome {
                Ok(r) => println!(
                    "[{i}] {file}: weight {}, {} rounds, ratio <= {:.4}",
                    r.weight,
                    r.rounds(),
                    r.ratio_upper_bound()
                ),
                Err(msg) => println!("[{i}] {file}: FAILED ({msg})"),
            }
        }
        println!(
            "batch     : {} instances, {ok} ok, {failed} failed, {wall_ms:.2} ms, {throughput:.1} instances/sec, {threads} threads",
            entries.len()
        );
    }
    if failed > 0 {
        return Err(runtime(format!(
            "{failed} of {} instances failed",
            entries.len()
        )));
    }
    Ok(())
}
