//! `dcover verify` — independent certificate checking for solve reports.
//!
//! Takes an instance file and a JSON report produced by `dcover solve
//! --json` (or one line of `dcover serve` output) and re-verifies the
//! solution from first principles via
//! [`Certificate`](dcover_core::Certificate): coverage, dual feasibility,
//! β-tightness of every cover member, and the `(f + ε)` approximation
//! bound. Exits non-zero on any violation, so a pipeline can gate on it
//! without trusting the solver.

use dcover_core::Certificate;
use dcover_hypergraph::{Cover, VertexId};

use super::{extract_duals, read_instance, runtime, usage};
use crate::args;
use crate::json::{self, Obj, Value};
use crate::Failure;

/// `dcover verify INSTANCE REPORT [--eps E] [--json]`
///
/// `REPORT` may be `-` for stdin. The report must carry the solution
/// (`result.cover` + `result.duals`, as every `--json` report does) and
/// an `epsilon` field (overridable with `--eps`).
pub fn verify(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(raw, &["json"], &["eps"]).map_err(usage)?;
    let [instance_path, report_path] = parsed.positional.as_slice() else {
        return Err(usage(format!(
            "verify takes exactly two arguments (INSTANCE REPORT), got {}",
            parsed.positional.len()
        )));
    };
    let g = read_instance(instance_path)?;
    let text = if report_path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| runtime(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(report_path).map_err(|e| runtime(format!("{report_path}: {e}")))?
    };
    let report =
        json::parse(text.trim()).map_err(|e| runtime(format!("{report_path}: bad JSON: {e}")))?;

    // The solution lives under `result` in solve/serve reports; accept it
    // at the top level too (hand-built certificates).
    let result = report.get("result").unwrap_or(&report);
    let cover_ids = extract_indices(result.get("cover"), "cover", g.n())?;
    let duals = extract_duals(result.get("duals"))?;
    let epsilon = match parsed.value("eps") {
        Some(raw) => raw
            .parse::<f64>()
            .map_err(|_| usage(format!("invalid value `{raw}` for --eps")))?,
        None => report
            .get("epsilon")
            .and_then(Value::as_f64)
            .ok_or_else(|| {
                runtime("report has no `epsilon` field; pass --eps explicitly".to_string())
            })?,
    };

    let certificate = Certificate {
        cover: Cover::from_ids(g.n(), cover_ids),
        duals,
        epsilon,
        tolerance: dcover_core::DEFAULT_TOLERANCE,
    };
    let f_plus_eps = g.rank().max(1) as f64 + epsilon;
    // Relative tolerance, shared with the certificate's own float checks:
    // an exact (or absolute-slack) comparison would flag valid covers
    // whose accumulated-rounding dual total sits a few ULPs past the
    // guarantee.
    let guarantee_slack = f_plus_eps * dcover_core::DEFAULT_TOLERANCE;
    match certificate.verify(&g) {
        Ok(bound) => {
            if parsed.switch("json") {
                let out = Obj::new()
                    .bool("ok", true)
                    .float("ratio_upper_bound", bound)
                    .float("f_plus_eps", f_plus_eps)
                    .bool("within_guarantee", bound <= f_plus_eps + guarantee_slack)
                    .build();
                println!("{out}");
            } else {
                println!("certificate OK: ratio <= {bound:.6} (guarantee f+eps = {f_plus_eps})");
            }
            Ok(())
        }
        Err(e) => {
            if parsed.switch("json") {
                let out = Obj::new()
                    .bool("ok", false)
                    .str("error", &e.to_string())
                    .build();
                println!("{out}");
            }
            Err(runtime(format!("certificate INVALID: {e}")))
        }
    }
}

/// Reads the cover as vertex indices, validating range and integrality.
fn extract_indices(value: Option<&Value>, what: &str, n: usize) -> Result<Vec<VertexId>, Failure> {
    let items = value
        .and_then(Value::as_array)
        .ok_or_else(|| runtime(format!("report has no `{what}` array in its result")))?;
    items
        .iter()
        .map(|v| {
            let x = v
                .as_f64()
                .ok_or_else(|| runtime(format!("non-numeric entry in `{what}`")))?;
            let idx = x as usize;
            if x.fract() != 0.0 || x < 0.0 || idx >= n {
                return Err(runtime(format!(
                    "`{what}` entry {x} is not a vertex index of an n={n} instance"
                )));
            }
            Ok(VertexId::new(idx))
        })
        .collect()
}
