//! `dcover gen` — seeded instance generation across every family the
//! library provides: random (uniform, mixed-rank, planted, preferential,
//! calibrated-degree), geometric coverage, and the structured/extremal
//! families (star, clique, path, cycle, sunflower, f-partite, hyper-star).
//!
//! With `--json`, a machine-readable generation report — family, **seed**,
//! the resolved parameters, and instance statistics — goes to stdout so an
//! experiment log can reproduce the instance exactly; the instance itself
//! then requires `--out FILE`.

use dcover_hypergraph::generators::{
    calibrated_degree, clique, complete_f_partite, coverage_instance, cycle, hyper_star, path,
    planted_cover, preferential_attachment, random_mixed_rank, random_uniform, star, sunflower,
    RandomUniform, WeightDist,
};
use dcover_hypergraph::{format, Hypergraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::{runtime, usage};
use crate::args;
use crate::json::Obj;
use crate::Failure;

/// The families `dcover gen` knows, with their options (beyond the shared
/// `--seed`, `--min-weight`, `--max-weight`, `--out`, `--json`).
const FAMILIES: &str = "\
uniform       --n N --m M [--rank F]                    random rank-F edges
mixed         --n N --m M [--min-rank A --max-rank B]   edge sizes vary in [A, B]
planted       --n N --m M [--rank F --cover-size K --decoy-weight W]
preferential  --n N --m M [--rank F]                    skewed degrees (hubs)
calibrated    [--rank F --delta D --copies C]           max degree exactly D
geometric     [--points P --stations S --radius R --max-frequency F]
star          [--leaves L --center-weight W --leaf-weight W]
clique        [--n N]
path          [--n N]
cycle         [--n N]
sunflower     [--petals P --core C --petal-size S --core-weight W --petal-weight W]
f-partite     [--f F --group-size G]
hyper-star    [--f F --delta D --hub-weight W]";

/// Whether a family consumes the RNG (deterministic constructions ignore
/// `--seed` and report `"seed": null`).
fn is_seeded(family: &str) -> bool {
    matches!(
        family,
        "uniform" | "mixed" | "planted" | "preferential" | "calibrated" | "geometric"
    )
}

/// `dcover gen FAMILY [family options] [--seed S] [--min-weight W]
/// [--max-weight W] [--out FILE] [--json]`
pub fn gen(raw: &[String]) -> Result<(), Failure> {
    let parsed = args::parse(
        raw,
        &["json"],
        &[
            "n",
            "m",
            "rank",
            "min-rank",
            "max-rank",
            "cover-size",
            "decoy-weight",
            "delta",
            "copies",
            "points",
            "stations",
            "radius",
            "max-frequency",
            "leaves",
            "center-weight",
            "leaf-weight",
            "petals",
            "core",
            "petal-size",
            "core-weight",
            "petal-weight",
            "f",
            "group-size",
            "hub-weight",
            "seed",
            "min-weight",
            "max-weight",
            "out",
        ],
    )
    .map_err(usage)?;
    let [family] = parsed.positional.as_slice() else {
        return Err(usage(format!(
            "gen takes exactly one family; available:\n{FAMILIES}"
        )));
    };

    let seed: u64 = parsed.value_or("seed", 1).map_err(usage)?;
    let min_weight: u64 = parsed.value_or("min-weight", 1).map_err(usage)?;
    let max_weight: u64 = parsed.value_or("max-weight", 100).map_err(usage)?;
    if min_weight == 0 || min_weight > max_weight {
        return Err(usage(
            "weights need 0 < --min-weight <= --max-weight".to_string(),
        ));
    }
    let weights = WeightDist::Uniform {
        min: min_weight,
        max: max_weight,
    };
    let mut rng = StdRng::seed_from_u64(seed);

    // Each arm yields the instance plus the resolved family parameters
    // (for the JSON report).
    let (g, params): (Hypergraph, Obj) = match family.as_str() {
        "uniform" => {
            let n: usize = parsed.required("n").map_err(usage)?;
            let m: usize = parsed.required("m").map_err(usage)?;
            let rank: usize = parsed.value_or("rank", 3).map_err(usage)?;
            check(n > 0 && rank > 0, "--n and --rank must be positive")?;
            let g = random_uniform(
                &RandomUniform {
                    n,
                    m,
                    rank,
                    weights,
                },
                &mut rng,
            );
            (g, Obj::new().num("n", n).num("m", m).num("rank", rank))
        }
        "mixed" => {
            let n: usize = parsed.required("n").map_err(usage)?;
            let m: usize = parsed.required("m").map_err(usage)?;
            let min_rank: usize = parsed.value_or("min-rank", 2).map_err(usage)?;
            let max_rank: usize = parsed.value_or("max-rank", 4).map_err(usage)?;
            check(
                n > 0 && min_rank > 0 && min_rank <= max_rank,
                "need --n > 0 and 0 < --min-rank <= --max-rank",
            )?;
            let g = random_mixed_rank(n, m, min_rank, max_rank, &weights, &mut rng);
            (
                g,
                Obj::new()
                    .num("n", n)
                    .num("m", m)
                    .num("min_rank", min_rank)
                    .num("max_rank", max_rank),
            )
        }
        "planted" => {
            let n: usize = parsed.required("n").map_err(usage)?;
            let m: usize = parsed.required("m").map_err(usage)?;
            let rank: usize = parsed.value_or("rank", 3).map_err(usage)?;
            let k: usize = parsed
                .value_or("cover-size", (n / 10).max(1))
                .map_err(usage)?;
            let decoy: u64 = parsed.value_or("decoy-weight", 1000).map_err(usage)?;
            check(
                rank > 0 && k > 0 && k <= n,
                "need --rank > 0 and 0 < --cover-size <= --n",
            )?;
            let (g, planted) = planted_cover(n, m, rank, k, decoy, &mut rng);
            (
                g,
                Obj::new()
                    .num("n", n)
                    .num("m", m)
                    .num("rank", rank)
                    .num("cover_size", planted.len())
                    .num("decoy_weight", decoy),
            )
        }
        "preferential" => {
            let n: usize = parsed.required("n").map_err(usage)?;
            let m: usize = parsed.required("m").map_err(usage)?;
            let rank: usize = parsed.value_or("rank", 3).map_err(usage)?;
            check(n > 0 && rank > 0, "--n and --rank must be positive")?;
            let g = preferential_attachment(n, m, rank, &weights, &mut rng);
            (g, Obj::new().num("n", n).num("m", m).num("rank", rank))
        }
        "calibrated" => {
            let rank: usize = parsed.value_or("rank", 3).map_err(usage)?;
            let delta: usize = parsed.value_or("delta", 8).map_err(usage)?;
            let copies: usize = parsed.value_or("copies", 4).map_err(usage)?;
            check(rank > 0 && delta > 0, "--rank and --delta must be positive")?;
            let g = calibrated_degree(rank, delta, copies, &weights, &mut rng);
            (
                g,
                Obj::new()
                    .num("rank", rank)
                    .num("delta", delta)
                    .num("copies", copies),
            )
        }
        "geometric" => {
            let points: usize = parsed.value_or("points", 200).map_err(usage)?;
            let stations: usize = parsed.value_or("stations", 40).map_err(usage)?;
            let radius: f64 = parsed.value_or("radius", 0.2).map_err(usage)?;
            let max_frequency: usize = parsed.value_or("max-frequency", 3).map_err(usage)?;
            check(
                points > 0 && stations > 0 && radius > 0.0 && max_frequency > 0,
                "need positive --points, --stations, --radius, --max-frequency",
            )?;
            let inst =
                coverage_instance(points, stations, radius, max_frequency, &weights, &mut rng);
            let g = inst
                .system
                .to_hypergraph()
                .map_err(|e| runtime(format!("geometric instance invalid: {e}")))?;
            (
                g,
                Obj::new()
                    .num("points", points)
                    .num("stations", stations)
                    .float("radius", radius)
                    .num("max_frequency", max_frequency),
            )
        }
        "star" => {
            let leaves: usize = parsed.value_or("leaves", 16).map_err(usage)?;
            let center: u64 = parsed.value_or("center-weight", 1).map_err(usage)?;
            let leaf: u64 = parsed.value_or("leaf-weight", 2).map_err(usage)?;
            check(
                leaves > 0 && center > 0 && leaf > 0,
                "need positive --leaves and weights",
            )?;
            (
                star(leaves, center, leaf),
                Obj::new()
                    .num("leaves", leaves)
                    .num("center_weight", center)
                    .num("leaf_weight", leaf),
            )
        }
        "clique" => {
            let n: usize = parsed.value_or("n", 12).map_err(usage)?;
            check(n >= 2, "--n must be at least 2")?;
            (clique(n), Obj::new().num("n", n))
        }
        "path" => {
            let n: usize = parsed.value_or("n", 16).map_err(usage)?;
            check(n >= 2, "--n must be at least 2")?;
            (path(n), Obj::new().num("n", n))
        }
        "cycle" => {
            let n: usize = parsed.value_or("n", 16).map_err(usage)?;
            check(n >= 3, "--n must be at least 3")?;
            (cycle(n), Obj::new().num("n", n))
        }
        "sunflower" => {
            let petals: usize = parsed.value_or("petals", 8).map_err(usage)?;
            let core: usize = parsed.value_or("core", 2).map_err(usage)?;
            let petal_size: usize = parsed.value_or("petal-size", 2).map_err(usage)?;
            let core_weight: u64 = parsed.value_or("core-weight", 1).map_err(usage)?;
            let petal_weight: u64 = parsed.value_or("petal-weight", 3).map_err(usage)?;
            check(
                petals > 0 && core > 0 && core_weight > 0 && petal_weight > 0,
                "need positive --petals, --core, and weights",
            )?;
            (
                sunflower(petals, core, petal_size, core_weight, petal_weight),
                Obj::new()
                    .num("petals", petals)
                    .num("core", core)
                    .num("petal_size", petal_size)
                    .num("core_weight", core_weight)
                    .num("petal_weight", petal_weight),
            )
        }
        "f-partite" => {
            let f: usize = parsed.value_or("f", 3).map_err(usage)?;
            let group_size: usize = parsed.value_or("group-size", 3).map_err(usage)?;
            check(
                f > 0 && group_size > 0,
                "--f and --group-size must be positive",
            )?;
            let edge_count = (group_size as u128).checked_pow(f as u32);
            check(
                edge_count.is_some_and(|m| m <= 1_000_000),
                "f-partite needs group-size^f <= 1e6 edges",
            )?;
            (
                complete_f_partite(f, group_size),
                Obj::new().num("f", f).num("group_size", group_size),
            )
        }
        "hyper-star" => {
            let f: usize = parsed.value_or("f", 3).map_err(usage)?;
            let delta: usize = parsed.value_or("delta", 8).map_err(usage)?;
            let hub_weight: u64 = parsed.value_or("hub-weight", 1).map_err(usage)?;
            check(
                f > 0 && delta > 0 && hub_weight > 0,
                "need positive --f, --delta, --hub-weight",
            )?;
            (
                hyper_star(f, delta, hub_weight),
                Obj::new()
                    .num("f", f)
                    .num("delta", delta)
                    .num("hub_weight", hub_weight),
            )
        }
        other => {
            return Err(usage(format!(
                "unknown family `{other}`; available:\n{FAMILIES}"
            )))
        }
    };

    let text = format::serialize(&g);
    let out = parsed.value("out");
    if parsed.switch("json") {
        // The JSON report owns stdout; the instance must go to a file.
        let Some(path) = out.filter(|p| *p != "-") else {
            return Err(usage(
                "gen --json writes the report to stdout; give the instance a destination with --out FILE".to_string(),
            ));
        };
        std::fs::write(path, text).map_err(|e| runtime(format!("{path}: {e}")))?;
        let mut report = Obj::new().str("family", family);
        report = if is_seeded(family) {
            report.num("seed", seed)
        } else {
            report.raw("seed", "null")
        };
        let stats = Obj::new()
            .num("n", g.n())
            .num("m", g.m())
            .num("rank", g.rank())
            .num("max_degree", g.max_degree())
            .build();
        let report = report
            .raw("params", &params.build())
            .num("min_weight", min_weight)
            .num("max_weight", max_weight)
            .raw("instance", &stats)
            .str("out", path)
            .build();
        println!("{report}");
    } else {
        match out {
            None | Some("-") => print!("{text}"),
            Some(path) => {
                std::fs::write(path, text).map_err(|e| runtime(format!("{path}: {e}")))?;
                eprintln!(
                    "wrote {path} ({family}: n={} m={} rank={} seed={})",
                    g.n(),
                    g.m(),
                    g.rank(),
                    if is_seeded(family) {
                        seed.to_string()
                    } else {
                        "-".to_string()
                    }
                );
            }
        }
    }
    Ok(())
}

fn check(ok: bool, msg: &str) -> Result<(), Failure> {
    if ok {
        Ok(())
    } else {
        Err(usage(msg.to_string()))
    }
}
