//! `dcover` — the command-line serving entry point of the
//! `distributed-covering` workspace.
//!
//! Three subcommands over the DIMACS-flavoured instance format of
//! [`dcover_hypergraph::format`]:
//!
//! * `dcover solve FILE` — solve one instance (sequential or
//!   chunk-parallel) and report the certified cover;
//! * `dcover batch FILE...` — solve many instances concurrently on one
//!   [`SolveSession`](dcover_core::SolveSession) (persistent worker pool,
//!   recycled engine arenas, per-instance error isolation);
//! * `dcover gen` — generate seeded random instances.
//!
//! `--json` switches `solve`/`batch` to machine-readable reports. The
//! binary is dependency-free (hand-rolled argument parsing and JSON
//! emission) because the build environment is offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
mod commands;
pub mod json;

/// Why a command did not succeed: a usage error (exit code 2) or a runtime
/// failure (exit code 1).
#[derive(Debug)]
pub enum Failure {
    /// Bad invocation; the message explains the expected shape.
    Usage(String),
    /// The command ran but failed (I/O, parse, or solve error).
    Runtime(String),
}

const USAGE: &str = "\
dcover — distributed covering (MWHVC) solver CLI

USAGE:
    dcover solve FILE [--eps E] [--threads N] [--variant standard|half-bid] [--json]
    dcover batch FILE... [--eps E] [--threads N] [--variant standard|half-bid] [--json]
    dcover gen uniform --n N --m M [--rank F] [--seed S]
                       [--min-weight W] [--max-weight W] [--out FILE]

    FILE may be `-` for stdin. `batch` defaults --threads to the machine's
    available parallelism and serves all instances from one persistent
    worker pool; failed instances are reported per entry and make the exit
    code non-zero without aborting the rest of the batch.
";

/// Runs the CLI against `args` (everything after the program name) and
/// returns the process exit code.
#[must_use]
pub fn run(args: &[String]) -> i32 {
    let outcome = match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("solve") => commands::solve(&args[1..]),
        Some("batch") => commands::batch(&args[1..]),
        Some("gen") => commands::gen(&args[1..]),
        Some(other) => Err(Failure::Usage(format!("unknown subcommand `{other}`"))),
    };
    match outcome {
        Ok(()) => 0,
        Err(Failure::Runtime(msg)) => {
            eprintln!("dcover: {msg}");
            1
        }
        Err(Failure::Usage(msg)) => {
            eprintln!("dcover: {msg}");
            eprint!("{USAGE}");
            2
        }
    }
}
