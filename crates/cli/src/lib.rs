//! `dcover` — the command-line serving entry point of the
//! `distributed-covering` workspace.
//!
//! Five subcommands over the DIMACS-flavoured instance format of
//! [`dcover_hypergraph::format`]:
//!
//! * `dcover solve FILE` — solve one instance (sequential or
//!   chunk-parallel) and report the certified cover; with
//!   `--warm-from REPORT`, **warm-start** from a previous report's dual
//!   state instead of solving from scratch;
//! * `dcover serve` — the streaming server: read records from stdin as
//!   they arrive, submit each to a
//!   [`SolveService`](dcover_core::SolveService) (bounded queue,
//!   backpressure, zero-copy `Arc` instances), and emit one JSON line per
//!   result in completion order with sequence ids. Streams mix full
//!   instances with `p delta` **revision records** that reference an
//!   earlier record's seq and are re-solved warm from its cached duals;
//! * `dcover batch FILE...` — solve many pre-assembled files concurrently
//!   on one [`SolveSession`](dcover_core::SolveSession) (persistent
//!   worker pool, recycled engine arenas, per-instance error isolation);
//! * `dcover verify INSTANCE REPORT` — re-check a solve report's
//!   cover/dual certificate from first principles, exiting non-zero on
//!   violation;
//! * `dcover gen FAMILY` — generate instances across every library
//!   family (random, geometric, structured), with seeds recorded in the
//!   `--json` generation report.
//!
//! `--json` switches `solve`/`batch`/`gen`/`verify` to machine-readable
//! reports (`serve` is always JSON lines). The binary is dependency-free
//! (hand-rolled argument parsing plus JSON emission *and* parsing)
//! because the build environment is offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
mod commands;
pub mod json;

/// Why a command did not succeed: a usage error (exit code 2) or a runtime
/// failure (exit code 1).
#[derive(Debug)]
pub enum Failure {
    /// Bad invocation; the message explains the expected shape.
    Usage(String),
    /// The command ran but failed (I/O, parse, or solve error).
    Runtime(String),
}

const USAGE: &str = "\
dcover — distributed covering (MWHVC) solver CLI

USAGE:
    dcover solve FILE [--eps E] [--threads N] [--variant standard|half-bid]
                 [--partition contiguous|locality] [--warm-from REPORT] [--json]
    dcover serve [--eps E] [--threads N] [--queue C] [--variant standard|half-bid]
                 [--partition contiguous|locality]
    dcover batch FILE... [--eps E] [--threads N] [--variant standard|half-bid]
                 [--partition contiguous|locality] [--json]
    dcover verify INSTANCE REPORT [--eps E] [--json]
    dcover gen FAMILY [family options] [--seed S]
               [--min-weight W] [--max-weight W] [--out FILE] [--json]

    FILE may be `-` for stdin. `solve --warm-from REPORT` seeds the solve
    from the duals/levels of a previous `--json` report of a (revision of
    the) same instance instead of starting cold; without --eps the
    report's epsilon is inherited. `--partition` picks the parallel
    scheduler's chunk placement (default `contiguous`; `locality`
    clusters connected nodes so most messages stay inside one worker's
    chunk — results are bit-identical either way, and the JSON reports
    the intra/cross-chunk message split). `serve` reads a stream of records from
    stdin, each starting at its `p` header: `p mwhvc n m` starts a full
    instance, `p delta BASE R A W [EPS]` a revision of the earlier record
    whose seq is BASE (R `r` edge-removal ids, A `a` edge-insertion
    lines, W `w` vertex re-weight lines) — revisions are re-solved
    warm-started from the cached base result. Records are solved on a
    bounded submission queue (--queue, default 4x threads) with
    backpressure, and one JSON line per result is printed in completion
    order with arrival-order `seq` ids (warm results carry `warm: true`
    and their `base` seq). `batch` defaults --threads to the
    machine's available parallelism and serves all instances from one
    persistent worker pool; failed instances are reported per entry and
    make the exit code non-zero without aborting the rest. `verify`
    re-checks the cover and dual certificate inside a solve/serve JSON
    report against the instance and exits non-zero on any violation.
    `gen` families: uniform, mixed, planted, preferential, calibrated,
    geometric, star, clique, path, cycle, sunflower, f-partite,
    hyper-star (run `dcover gen` for per-family options); with --json the
    generation report (family, seed, params, stats) goes to stdout and
    the instance to --out FILE.
";

/// Runs the CLI against `args` (everything after the program name) and
/// returns the process exit code.
#[must_use]
pub fn run(args: &[String]) -> i32 {
    let outcome = match args.first().map(String::as_str) {
        None | Some("help" | "--help" | "-h") => {
            print!("{USAGE}");
            Ok(())
        }
        Some("solve") => commands::solve(&args[1..]),
        Some("serve") => commands::serve::serve(&args[1..]),
        Some("batch") => commands::batch(&args[1..]),
        Some("verify") => commands::verify::verify(&args[1..]),
        Some("gen") => commands::gen::gen(&args[1..]),
        Some(other) => Err(Failure::Usage(format!("unknown subcommand `{other}`"))),
    };
    match outcome {
        Ok(()) => 0,
        Err(Failure::Runtime(msg)) => {
            eprintln!("dcover: {msg}");
            1
        }
        Err(Failure::Usage(msg)) => {
            eprintln!("dcover: {msg}");
            eprint!("{USAGE}");
            2
        }
    }
}
