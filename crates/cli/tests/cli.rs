//! Integration tests driving the real `dcover` binary.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn dcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcover"))
        .args(args)
        .output()
        .expect("run dcover binary")
}

/// Runs `dcover` with `input` piped through stdin.
fn dcover_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dcover"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dcover binary");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("run dcover binary")
}

fn sample_path() -> String {
    // crates/cli -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("data/sample.mwhvc");
    root.to_string_lossy().into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = dcover(&["--help"]);
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("USAGE"));
}

#[test]
fn solve_sample_human_and_json() {
    let sample = sample_path();
    let human = dcover(&["solve", &sample, "--eps", "0.5"]);
    assert!(human.status.success(), "{human:?}");
    let text = stdout_of(&human);
    assert!(text.contains("cover"), "{text}");
    assert!(text.contains("ratio <="), "{text}");

    let json = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(json.status.success());
    let text = stdout_of(&json);
    assert!(text.contains("\"weight\":"), "{text}");
    assert!(text.contains("\"rounds\":"), "{text}");
    assert!(text.contains("\"ratio_upper_bound\":"), "{text}");

    // Parallel solve agrees on the certified weight (bit-identical engine).
    let par = dcover(&["solve", &sample, "--eps", "0.5", "--threads", "4", "--json"]);
    assert!(par.status.success());
    let get_weight = |s: &str| -> String {
        let i = s.find("\"weight\": ").expect("weight field") + 10;
        s[i..].chars().take_while(char::is_ascii_digit).collect()
    };
    assert_eq!(get_weight(&text), get_weight(&stdout_of(&par)));
}

#[test]
fn gen_then_solve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dcover-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.mwhvc");
    let path_str = path.to_string_lossy().into_owned();
    let gen = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7", "--out",
        &path_str,
    ]);
    assert!(gen.status.success(), "{gen:?}");
    let solve = dcover(&["solve", &path_str, "--json"]);
    assert!(solve.status.success(), "{solve:?}");
    assert!(stdout_of(&solve).contains("\"n\": 40"));
    // Same seed, same instance: deterministic generation.
    let gen2 = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7",
    ]);
    assert!(gen2.status.success());
    assert_eq!(
        stdout_of(&gen2),
        std::fs::read_to_string(&path).unwrap(),
        "gen must be deterministic per seed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_solves_many_files_and_isolates_failures() {
    let sample = sample_path();
    let ok = dcover(&[
        "batch",
        &sample,
        &sample,
        &sample,
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok.status.success(), "{ok:?}");
    let text = stdout_of(&ok);
    assert!(text.contains("\"instances\": 3"), "{text}");
    assert!(text.contains("\"failed\": 0"), "{text}");
    assert!(text.contains("\"instances_per_sec\":"), "{text}");

    // One missing file: its entry fails, the others still solve, and the
    // exit code is non-zero.
    let mixed = dcover(&[
        "batch",
        &sample,
        "/nonexistent.mwhvc",
        "--threads",
        "2",
        "--json",
    ]);
    assert_eq!(mixed.status.code(), Some(1));
    let text = stdout_of(&mixed);
    assert!(text.contains("\"ok\": 1"), "{text}");
    assert!(text.contains("\"failed\": 1"), "{text}");
}

#[test]
fn serve_streams_instances_in_completion_order_with_seq_ids() {
    // Two instances concatenated on stdin; each must come back as one
    // JSON line carrying its arrival-order seq id.
    let stream = "c first\np mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p mwhvc 2 1\nv 2\nv 3\ne 0 1\n";
    let out = dcover_stdin(&["serve", "--eps", "0.5", "--threads", "2"], stream);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSON line per instance: {text}");
    let mut seqs: Vec<&str> = lines
        .iter()
        .map(|l| {
            assert!(l.starts_with("{\"seq\": "), "JSON line: {l}");
            assert!(l.contains("\"ok\": true"), "solved: {l}");
            assert!(l.contains("\"cover\": ["), "carries the cover: {l}");
            &l[8..9]
        })
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec!["0", "1"]);
    // The weight-1 middle vertex wins in the first instance.
    let first = lines.iter().find(|l| l.contains("\"seq\": 0")).unwrap();
    assert!(first.contains("\"weight\": 1"), "{first}");
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        summary.contains("2 ok (0 warm-started), 0 expired, 0 cancelled, 0 shed, 0 failed"),
        "{summary}"
    );
    // The latency split: queue_ms + solve_ms == latency_ms, parse_ms
    // reported separately.
    for l in &lines {
        for field in ["queue_ms", "solve_ms", "latency_ms", "parse_ms"] {
            assert!(l.contains(&format!("\"{field}\":")), "{field} in {l}");
        }
        assert!(l.contains("\"class\": \"bulk\""), "default class: {l}");
    }
}

#[test]
fn serve_class_flag_and_per_record_directives_schedule_records() {
    // Stream default interactive; the second record overrides to bulk via
    // a `c @class` directive. Both solve; the result lines echo the class.
    let stream = "p mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p mwhvc 2 1\nc @class bulk\nv 2\nv 3\ne 0 1\n";
    let out = dcover_stdin(
        &["serve", "--threads", "1", "--class", "interactive"],
        stream,
    );
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let line = |seq: u64| {
        text.lines()
            .find(|l| l.starts_with(&format!("{{\"seq\": {seq},")))
            .unwrap_or_else(|| panic!("no line for seq {seq}: {text}"))
            .to_string()
    };
    assert!(line(0).contains("\"class\": \"interactive\""), "{text}");
    assert!(line(1).contains("\"class\": \"bulk\""), "{text}");
    // A bad directive value is a record failure, not a crash.
    let bad = dcover_stdin(
        &["serve", "--threads", "1"],
        "p mwhvc 2 1\nc @class warp\nv 2\nv 3\ne 0 1\n",
    );
    assert_eq!(bad.status.code(), Some(1));
    assert!(stdout_of(&bad).contains("unknown class"), "{bad:?}");
    // And a bad --class flag is a usage error.
    let usage = dcover_stdin(&["serve", "--class", "warp"], "");
    assert!(!usage.status.success());
}

#[test]
fn serve_metrics_emits_an_end_of_stream_summary() {
    let stream = "p mwhvc 3 2\nc @class interactive\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p mwhvc 2 1\nv 2\nv 3\ne 0 1\n";
    let out = dcover_stdin(&["serve", "--threads", "1", "--metrics"], stream);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "2 results + 1 metrics line: {text}");
    let metrics = lines.last().unwrap();
    assert!(metrics.starts_with("{\"metrics\": {"), "{metrics}");
    for field in [
        "\"records\": 2",
        "\"ok\": 2",
        "\"interactive\": {\"submitted\": 1",
        "\"bulk\": {\"submitted\": 1",
        "queue_depth_high_water",
        "worker_busy_ms",
        "queue_wait",
        "solve_time",
        "p99_ms",
    ] {
        assert!(metrics.contains(field), "missing {field}: {metrics}");
    }
}

#[test]
fn serve_deadline_ms_zero_expires_queued_records_without_failing_the_stream() {
    // Deadline 0: whichever records are still queued when a worker gets
    // to them have (deterministically) missed the deadline — with one
    // worker and three records, at least the trailing ones expire. The
    // stream still exits 0: expiry is load-shedding, not failure.
    let one = "p mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n";
    let stream = format!("{one}{one}{one}");
    let out = dcover_stdin(
        &["serve", "--threads", "1", "--deadline-ms", "0", "--metrics"],
        &stream,
    );
    assert!(
        out.status.success(),
        "expiry must not fail the exit: {out:?}"
    );
    let text = stdout_of(&out);
    let expired = text.matches("\"expired\": true").count();
    let ok = text.matches("\"ok\": true").count();
    assert_eq!(ok + expired, 3, "every record resolves: {text}");
    assert!(expired >= 1, "a 0ms deadline must shed something: {text}");
    for l in text.lines().filter(|l| l.contains("\"expired\": true")) {
        assert!(l.contains("\"queue_ms\":"), "expired line has wait: {l}");
        assert!(l.contains("deadline expired"), "{l}");
    }
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(summary.contains(&format!("{expired} expired")), "{summary}");
}

#[test]
fn serve_cancel_directive_resolves_the_record_without_failing_the_stream() {
    // A `c @cancel SEQ` line abandons the in-flight record it names:
    // record 0 is big enough that the directive — read immediately
    // after record 1's header frames and submits it — lands while it is
    // still queued or solving. Cancellation is load management: the
    // stream exits 0 and the cancelled record is counted apart from
    // failures.
    let dir = std::env::temp_dir().join("dcover-cancel-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let big = dir.join("big.mwhvc");
    let out = dcover(&[
        "gen",
        "uniform",
        "--n",
        "2000",
        "--m",
        "10000",
        "--rank",
        "3",
        "--seed",
        "7",
        "--out",
        big.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let big = std::fs::read_to_string(&big).expect("generated instance");
    let stream = format!("{big}p mwhvc 2 1\nv 2\nv 3\ne 0 1\nc @cancel 0\n");
    let out = dcover_stdin(&["serve", "--threads", "1", "--metrics"], &stream);
    assert!(
        out.status.success(),
        "cancel must not fail the exit: {out:?}"
    );
    let text = stdout_of(&out);
    let cancelled = text
        .lines()
        .find(|l| l.contains("\"seq\": 0"))
        .expect("record 0 resolves");
    assert!(cancelled.contains("\"ok\": false"), "{cancelled}");
    assert!(cancelled.contains("\"cancelled\": true"), "{cancelled}");
    let small = text
        .lines()
        .find(|l| l.contains("\"seq\": 1"))
        .expect("record 1 resolves");
    assert!(small.contains("\"ok\": true"), "{small}");
    let metrics = text
        .lines()
        .find(|l| l.starts_with("{\"metrics\""))
        .expect("metrics line");
    assert!(metrics.contains("\"cancelled\": 1"), "{metrics}");
    assert!(metrics.contains("\"failed\": 0"), "{metrics}");
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(summary.contains("1 cancelled"), "{summary}");
    assert!(summary.contains("0 failed"), "{summary}");
}

#[test]
fn serve_sheds_bulk_records_while_a_queued_interactive_record_waits() {
    // Shed target 0: any queued interactive wait trips admission
    // control. Record 0 (interactive, big) occupies the only worker,
    // record 1 (interactive, small) queues behind it, so record 2
    // (bulk) — submitted at end of stream while record 1 still waits —
    // is shed at the door. Shedding is load management: exit 0, counted
    // apart from failures.
    let dir = std::env::temp_dir().join("dcover-shed-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let big = dir.join("big.mwhvc");
    let out = dcover(&[
        "gen",
        "uniform",
        "--n",
        "2000",
        "--m",
        "10000",
        "--rank",
        "3",
        "--seed",
        "9",
        "--out",
        big.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let mut big = std::fs::read_to_string(&big).expect("generated instance");
    big.push_str("c @class interactive\n");
    let stream = format!(
        "{big}p mwhvc 3 2\nc @class interactive\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
         p mwhvc 2 1\nv 2\nv 3\ne 0 1\n"
    );
    let out = dcover_stdin(
        &[
            "serve",
            "--threads",
            "1",
            "--shed-target-ms",
            "0",
            "--metrics",
        ],
        &stream,
    );
    assert!(out.status.success(), "shed must not fail the exit: {out:?}");
    let text = stdout_of(&out);
    let shed = text
        .lines()
        .find(|l| l.contains("\"seq\": 2"))
        .expect("record 2 resolves");
    assert!(shed.contains("\"ok\": false"), "{shed}");
    assert!(shed.contains("\"shed\": true"), "{shed}");
    for seq in ["\"seq\": 0", "\"seq\": 1"] {
        let l = text.lines().find(|l| l.contains(seq)).expect("resolves");
        assert!(l.contains("\"ok\": true"), "interactive never shed: {l}");
    }
    let metrics = text
        .lines()
        .find(|l| l.starts_with("{\"metrics\""))
        .expect("metrics line");
    assert!(metrics.contains("\"shed\": 1"), "{metrics}");
    assert!(metrics.contains("\"failed\": 0"), "{metrics}");
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(summary.contains("1 shed"), "{summary}");
}

#[test]
fn serve_warm_starts_delta_records_against_prior_seqs() {
    // One instance followed by two chained delta records: a revision of
    // seq 0, then a revision of that revision (seq 1).
    let stream = "p mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p delta 0 0 1 1\na 0 2\nw 0 4\n\
                  p delta 1 1 0 0\nr 2\n";
    let out = dcover_stdin(&["serve", "--eps", "0.5", "--threads", "2"], stream);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON line per record: {text}");
    for seq in 0..3 {
        let line = lines
            .iter()
            .find(|l| l.starts_with(&format!("{{\"seq\": {seq},")))
            .unwrap_or_else(|| panic!("no line for seq {seq}: {text}"));
        assert!(line.contains("\"ok\": true"), "{line}");
        assert!(line.contains("\"cover\": ["), "{line}");
        assert!(line.contains("\"levels\": ["), "{line}");
    }
    let base = lines.iter().find(|l| l.contains("\"seq\": 0,")).unwrap();
    assert!(base.contains("\"warm\": false"), "{base}");
    assert!(base.contains("\"m\": 2"), "{base}");
    let first = lines.iter().find(|l| l.contains("\"seq\": 1,")).unwrap();
    assert!(first.contains("\"warm\": true"), "{first}");
    assert!(first.contains("\"base\": 0"), "{first}");
    assert!(
        first.contains("\"m\": 3"),
        "base had 2 edges, delta adds 1: {first}"
    );
    let second = lines.iter().find(|l| l.contains("\"seq\": 2,")).unwrap();
    assert!(second.contains("\"warm\": true"), "{second}");
    assert!(second.contains("\"base\": 1"), "{second}");
    assert!(second.contains("\"m\": 2"), "{second}");
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(summary.contains("3 ok (2 warm-started)"), "{summary}");
}

#[test]
fn chained_delta_inherits_its_bases_epsilon_not_the_stream_default() {
    // Record 1 overrides ε to 0.25; record 2 chains off it with no
    // override and must be solved — and *reported* — with 0.25, not the
    // stream's 0.5 (the ε drives verify's β-tightness check downstream).
    let stream = "p mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p delta 0 0 0 0 0.25\n\
                  p delta 1 0 0 0\n";
    let out = dcover_stdin(&["serve", "--eps", "0.5", "--threads", "1"], stream);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let line = |seq: u64| {
        text.lines()
            .find(|l| l.starts_with(&format!("{{\"seq\": {seq},")))
            .unwrap_or_else(|| panic!("no line for seq {seq}: {text}"))
            .to_string()
    };
    assert!(line(0).contains("\"epsilon\": 0.5"), "{text}");
    assert!(line(1).contains("\"epsilon\": 0.25"), "{text}");
    assert!(line(2).contains("\"epsilon\": 0.25"), "{text}");
}

#[test]
fn serve_rejects_bad_delta_records_without_crashing() {
    // Delta referencing an unknown base, a delta with eps 0.0 (invalid),
    // and a delta whose base record itself failed — each yields an error
    // JSON line; the good records still solve.
    let stream = "p mwhvc 2 1\nv 2\nv 3\ne 0 1\n\
                  p delta 7 0 0 0\n\
                  p delta 0 0 0 0 0.0\n\
                  p mwhvc 1 1\nv 0\ne 0\n\
                  p delta 3 0 0 0\n\
                  p delta 0 0 0 0\n";
    let out = dcover_stdin(&["serve", "--threads", "1"], stream);
    assert_eq!(out.status.code(), Some(1), "failed records exit 1");
    let text = stdout_of(&out);
    assert_eq!(text.lines().count(), 6, "{text}");
    assert_eq!(text.matches("\"ok\": true").count(), 2, "{text}");
    assert_eq!(text.matches("\"ok\": false").count(), 4, "{text}");
    let eps_line = text
        .lines()
        .find(|l| l.starts_with("{\"seq\": 2,"))
        .unwrap();
    assert!(eps_line.contains("epsilon"), "bad eps reported: {eps_line}");
    let failed_base = text
        .lines()
        .find(|l| l.starts_with("{\"seq\": 4,"))
        .unwrap();
    assert!(failed_base.contains("cannot warm-start"), "{failed_base}");
}

#[test]
fn serve_isolates_a_malformed_instance() {
    let stream = "p mwhvc 2 1\nv 2\nv 3\ne 0 1\n\
                  p mwhvc 1 1\nv 0\ne 0\n\
                  p mwhvc 2 1\nv 5\nv 6\ne 0 1\n";
    let out = dcover_stdin(&["serve", "--threads", "1"], stream);
    assert_eq!(out.status.code(), Some(1), "a failed instance exits 1");
    let text = stdout_of(&out);
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("\"ok\": false"), "{text}");
    assert_eq!(text.matches("\"ok\": true").count(), 2, "{text}");
}

#[test]
fn serve_empty_stdin_is_fine() {
    let out = dcover_stdin(&["serve"], "");
    assert!(out.status.success(), "{out:?}");
    assert!(stdout_of(&out).is_empty());
}

#[test]
fn verify_accepts_valid_reports_and_rejects_tampered_ones() {
    let sample = sample_path();
    let report = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(report.status.success());
    let report_text = stdout_of(&report);

    let dir = std::env::temp_dir().join(format!("dcover-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    std::fs::write(&report_path, &report_text).unwrap();
    let report_path = report_path.to_string_lossy().into_owned();

    let ok = dcover(&["verify", &sample, &report_path, "--json"]);
    assert!(ok.status.success(), "{ok:?}");
    let text = stdout_of(&ok);
    assert!(text.contains("\"ok\": true"), "{text}");
    assert!(text.contains("\"within_guarantee\": true"), "{text}");

    // Reports also verify when piped through stdin.
    let piped = dcover_stdin(&["verify", &sample, "-"], &report_text);
    assert!(piped.status.success(), "{piped:?}");

    // Tampering: empty the cover -> uncovered edge, exit 1.
    let tampered = regex_replace(&report_text, "\"cover\": [", "\"cover\": [999999");
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, tampered).unwrap();
    let bad = dcover(&["verify", &sample, &bad_path.to_string_lossy()]);
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    // A serve line verifies too (it carries epsilon + result).
    let instance_text = std::fs::read_to_string(&sample).unwrap();
    let served = dcover_stdin(&["serve", "--eps", "0.5"], &instance_text);
    assert!(served.status.success());
    let line = stdout_of(&served);
    let piped = dcover_stdin(&["verify", &sample, "-"], &line);
    assert!(piped.status.success(), "{piped:?}\nline: {line}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tiny literal substring replacement (keeps the test dependency-free).
fn regex_replace(text: &str, needle: &str, replacement: &str) -> String {
    text.replacen(needle, replacement, 1)
}

#[test]
fn gen_families_produce_valid_instances_with_seeded_reports() {
    let dir = std::env::temp_dir().join(format!("dcover-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("uniform", vec!["--n", "30", "--m", "60"]),
        (
            "mixed",
            vec![
                "--n",
                "30",
                "--m",
                "50",
                "--min-rank",
                "2",
                "--max-rank",
                "4",
            ],
        ),
        (
            "planted",
            vec!["--n", "40", "--m", "80", "--cover-size", "5"],
        ),
        ("preferential", vec!["--n", "30", "--m", "90"]),
        ("calibrated", vec!["--delta", "5", "--copies", "2"]),
        ("geometric", vec!["--points", "50", "--stations", "12"]),
        ("star", vec!["--leaves", "9"]),
        ("clique", vec!["--n", "7"]),
        ("path", vec!["--n", "9"]),
        ("cycle", vec!["--n", "9"]),
        ("sunflower", vec!["--petals", "5", "--core", "2"]),
        ("f-partite", vec!["--f", "3", "--group-size", "3"]),
        ("hyper-star", vec!["--f", "3", "--delta", "6"]),
    ];
    for (family, extra) in cases {
        let out_path = dir.join(format!("{family}.mwhvc"));
        let out_str = out_path.to_string_lossy().into_owned();
        let mut args = vec!["gen", family, "--seed", "11", "--json", "--out", &out_str];
        args.extend(extra.iter());
        let gen = dcover(&args);
        assert!(gen.status.success(), "{family}: {gen:?}");
        let report = stdout_of(&gen);
        assert!(
            report.contains(&format!("\"family\": \"{family}\"")),
            "{report}"
        );
        assert!(report.contains("\"seed\": "), "seed recorded: {report}");
        // The generated instance solves.
        let solve = dcover(&["solve", &out_str, "--eps", "0.5"]);
        assert!(solve.status.success(), "{family}: {solve:?}");
    }
    // Seeded families are deterministic per seed; deterministic families
    // report a null seed.
    let a = dcover(&["gen", "uniform", "--n", "25", "--m", "40", "--seed", "3"]);
    let b = dcover(&["gen", "uniform", "--n", "25", "--m", "40", "--seed", "3"]);
    assert_eq!(stdout_of(&a), stdout_of(&b));
    let out_path = dir.join("det.mwhvc").to_string_lossy().into_owned();
    let det = dcover(&["gen", "clique", "--n", "5", "--json", "--out", &out_path]);
    assert!(stdout_of(&det).contains("\"seed\": null"), "{det:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_report_carries_cover_duals_and_levels() {
    let sample = sample_path();
    let json = dcover(&["solve", &sample, "--json"]);
    assert!(json.status.success());
    let text = stdout_of(&json);
    assert!(text.contains("\"cover\": ["), "{text}");
    assert!(text.contains("\"duals\": ["), "{text}");
    assert!(text.contains("\"levels\": ["), "{text}");
}

#[test]
fn solve_warm_from_report_reproduces_the_cold_solution() {
    let sample = sample_path();
    let cold = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(cold.status.success());
    let cold_text = stdout_of(&cold);

    let dir = std::env::temp_dir().join(format!("dcover-warm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    std::fs::write(&report_path, &cold_text).unwrap();
    let report_str = report_path.to_string_lossy().into_owned();

    // Warm re-solve of the unchanged instance: same cover/duals, fewer
    // rounds, epsilon inherited from the report.
    let warm = dcover(&["solve", &sample, "--warm-from", &report_str, "--json"]);
    assert!(warm.status.success(), "{warm:?}");
    let warm_text = stdout_of(&warm);
    assert!(warm_text.contains("\"warm\": true"), "{warm_text}");
    assert!(warm_text.contains("\"epsilon\": 0.5"), "{warm_text}");
    let field = |s: &str, key: &str| -> String {
        let i = s.find(key).unwrap_or_else(|| panic!("{key} in {s}")) + key.len();
        s[i..].chars().take_while(|c| *c != ']').collect()
    };
    assert_eq!(
        field(&warm_text, "\"duals\": ["),
        field(&cold_text, "\"duals\": ["),
        "warm duals bit-identical on an unchanged instance"
    );
    assert_eq!(
        field(&warm_text, "\"cover\": ["),
        field(&cold_text, "\"cover\": ["),
    );
    // And the warm result verifies like any other report.
    let warm_report = dir.join("warm.json");
    std::fs::write(&warm_report, &warm_text).unwrap();
    let ok = dcover(&["verify", &sample, &warm_report.to_string_lossy(), "--json"]);
    assert!(ok.status.success(), "{ok:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_json_failures_emit_error_objects() {
    let sample = sample_path();
    // Invalid epsilon: error JSON on stdout, usage exit code, no panic.
    let bad = dcover(&["solve", &sample, "--eps", "0", "--json"]);
    assert_eq!(bad.status.code(), Some(2), "{bad:?}");
    let text = stdout_of(&bad);
    assert!(text.starts_with("{\"ok\": false"), "{text}");
    assert!(text.contains("epsilon"), "{text}");
    // Same for a runtime failure.
    let bad = dcover(&["solve", "/nonexistent.mwhvc", "--json"]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(stdout_of(&bad).contains("\"ok\": false"));
    // Without --json the human error path is unchanged (stderr only).
    let bad = dcover(&["solve", &sample, "--eps", "0"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(stdout_of(&bad).is_empty());
}

#[test]
fn warm_from_refuses_thread_parallelism() {
    // Warm solves run on the sequential scheduler; silently ignoring
    // --threads would misreport the execution mode.
    let sample = sample_path();
    let report = dcover(&["solve", &sample, "--json"]);
    let dir = std::env::temp_dir().join(format!("dcover-warmthreads-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("r.json");
    std::fs::write(&path, stdout_of(&report)).unwrap();
    let out = dcover(&[
        "solve",
        &sample,
        "--warm-from",
        &path.to_string_lossy(),
        "--threads",
        "4",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let msg = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(msg.contains("sequential scheduler"), "{msg}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(dcover(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve"]).status.code(), Some(2));
    assert_eq!(dcover(&["gen", "uniform"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve", "x", "--nope"]).status.code(), Some(2));
    // Runtime failure (unreadable file) exits 1.
    assert_eq!(
        dcover(&["solve", "/nonexistent.mwhvc"]).status.code(),
        Some(1)
    );
}
