//! Integration tests driving the real `dcover` binary.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

fn dcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcover"))
        .args(args)
        .output()
        .expect("run dcover binary")
}

/// Runs `dcover` with `input` piped through stdin.
fn dcover_stdin(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dcover"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn dcover binary");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write stdin");
    child.wait_with_output().expect("run dcover binary")
}

fn sample_path() -> String {
    // crates/cli -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("data/sample.mwhvc");
    root.to_string_lossy().into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = dcover(&["--help"]);
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("USAGE"));
}

#[test]
fn solve_sample_human_and_json() {
    let sample = sample_path();
    let human = dcover(&["solve", &sample, "--eps", "0.5"]);
    assert!(human.status.success(), "{human:?}");
    let text = stdout_of(&human);
    assert!(text.contains("cover"), "{text}");
    assert!(text.contains("ratio <="), "{text}");

    let json = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(json.status.success());
    let text = stdout_of(&json);
    assert!(text.contains("\"weight\":"), "{text}");
    assert!(text.contains("\"rounds\":"), "{text}");
    assert!(text.contains("\"ratio_upper_bound\":"), "{text}");

    // Parallel solve agrees on the certified weight (bit-identical engine).
    let par = dcover(&["solve", &sample, "--eps", "0.5", "--threads", "4", "--json"]);
    assert!(par.status.success());
    let get_weight = |s: &str| -> String {
        let i = s.find("\"weight\": ").expect("weight field") + 10;
        s[i..].chars().take_while(char::is_ascii_digit).collect()
    };
    assert_eq!(get_weight(&text), get_weight(&stdout_of(&par)));
}

#[test]
fn gen_then_solve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dcover-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.mwhvc");
    let path_str = path.to_string_lossy().into_owned();
    let gen = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7", "--out",
        &path_str,
    ]);
    assert!(gen.status.success(), "{gen:?}");
    let solve = dcover(&["solve", &path_str, "--json"]);
    assert!(solve.status.success(), "{solve:?}");
    assert!(stdout_of(&solve).contains("\"n\": 40"));
    // Same seed, same instance: deterministic generation.
    let gen2 = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7",
    ]);
    assert!(gen2.status.success());
    assert_eq!(
        stdout_of(&gen2),
        std::fs::read_to_string(&path).unwrap(),
        "gen must be deterministic per seed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_solves_many_files_and_isolates_failures() {
    let sample = sample_path();
    let ok = dcover(&[
        "batch",
        &sample,
        &sample,
        &sample,
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok.status.success(), "{ok:?}");
    let text = stdout_of(&ok);
    assert!(text.contains("\"instances\": 3"), "{text}");
    assert!(text.contains("\"failed\": 0"), "{text}");
    assert!(text.contains("\"instances_per_sec\":"), "{text}");

    // One missing file: its entry fails, the others still solve, and the
    // exit code is non-zero.
    let mixed = dcover(&[
        "batch",
        &sample,
        "/nonexistent.mwhvc",
        "--threads",
        "2",
        "--json",
    ]);
    assert_eq!(mixed.status.code(), Some(1));
    let text = stdout_of(&mixed);
    assert!(text.contains("\"ok\": 1"), "{text}");
    assert!(text.contains("\"failed\": 1"), "{text}");
}

#[test]
fn serve_streams_instances_in_completion_order_with_seq_ids() {
    // Two instances concatenated on stdin; each must come back as one
    // JSON line carrying its arrival-order seq id.
    let stream = "c first\np mwhvc 3 2\nv 10\nv 1\nv 10\ne 0 1\ne 1 2\n\
                  p mwhvc 2 1\nv 2\nv 3\ne 0 1\n";
    let out = dcover_stdin(&["serve", "--eps", "0.5", "--threads", "2"], stream);
    assert!(out.status.success(), "{out:?}");
    let text = stdout_of(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSON line per instance: {text}");
    let mut seqs: Vec<&str> = lines
        .iter()
        .map(|l| {
            assert!(l.starts_with("{\"seq\": "), "JSON line: {l}");
            assert!(l.contains("\"ok\": true"), "solved: {l}");
            assert!(l.contains("\"cover\": ["), "carries the cover: {l}");
            &l[8..9]
        })
        .collect();
    seqs.sort_unstable();
    assert_eq!(seqs, vec!["0", "1"]);
    // The weight-1 middle vertex wins in the first instance.
    let first = lines.iter().find(|l| l.contains("\"seq\": 0")).unwrap();
    assert!(first.contains("\"weight\": 1"), "{first}");
    let summary = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(summary.contains("2 ok, 0 failed"), "{summary}");
}

#[test]
fn serve_isolates_a_malformed_instance() {
    let stream = "p mwhvc 2 1\nv 2\nv 3\ne 0 1\n\
                  p mwhvc 1 1\nv 0\ne 0\n\
                  p mwhvc 2 1\nv 5\nv 6\ne 0 1\n";
    let out = dcover_stdin(&["serve", "--threads", "1"], stream);
    assert_eq!(out.status.code(), Some(1), "a failed instance exits 1");
    let text = stdout_of(&out);
    assert_eq!(text.lines().count(), 3, "{text}");
    assert!(text.contains("\"ok\": false"), "{text}");
    assert_eq!(text.matches("\"ok\": true").count(), 2, "{text}");
}

#[test]
fn serve_empty_stdin_is_fine() {
    let out = dcover_stdin(&["serve"], "");
    assert!(out.status.success(), "{out:?}");
    assert!(stdout_of(&out).is_empty());
}

#[test]
fn verify_accepts_valid_reports_and_rejects_tampered_ones() {
    let sample = sample_path();
    let report = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(report.status.success());
    let report_text = stdout_of(&report);

    let dir = std::env::temp_dir().join(format!("dcover-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let report_path = dir.join("report.json");
    std::fs::write(&report_path, &report_text).unwrap();
    let report_path = report_path.to_string_lossy().into_owned();

    let ok = dcover(&["verify", &sample, &report_path, "--json"]);
    assert!(ok.status.success(), "{ok:?}");
    let text = stdout_of(&ok);
    assert!(text.contains("\"ok\": true"), "{text}");
    assert!(text.contains("\"within_guarantee\": true"), "{text}");

    // Reports also verify when piped through stdin.
    let piped = dcover_stdin(&["verify", &sample, "-"], &report_text);
    assert!(piped.status.success(), "{piped:?}");

    // Tampering: empty the cover -> uncovered edge, exit 1.
    let tampered = regex_replace(&report_text, "\"cover\": [", "\"cover\": [999999");
    let bad_path = dir.join("bad.json");
    std::fs::write(&bad_path, tampered).unwrap();
    let bad = dcover(&["verify", &sample, &bad_path.to_string_lossy()]);
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    // A serve line verifies too (it carries epsilon + result).
    let instance_text = std::fs::read_to_string(&sample).unwrap();
    let served = dcover_stdin(&["serve", "--eps", "0.5"], &instance_text);
    assert!(served.status.success());
    let line = stdout_of(&served);
    let piped = dcover_stdin(&["verify", &sample, "-"], &line);
    assert!(piped.status.success(), "{piped:?}\nline: {line}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tiny literal substring replacement (keeps the test dependency-free).
fn regex_replace(text: &str, needle: &str, replacement: &str) -> String {
    text.replacen(needle, replacement, 1)
}

#[test]
fn gen_families_produce_valid_instances_with_seeded_reports() {
    let dir = std::env::temp_dir().join(format!("dcover-gen-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("uniform", vec!["--n", "30", "--m", "60"]),
        (
            "mixed",
            vec![
                "--n",
                "30",
                "--m",
                "50",
                "--min-rank",
                "2",
                "--max-rank",
                "4",
            ],
        ),
        (
            "planted",
            vec!["--n", "40", "--m", "80", "--cover-size", "5"],
        ),
        ("preferential", vec!["--n", "30", "--m", "90"]),
        ("calibrated", vec!["--delta", "5", "--copies", "2"]),
        ("geometric", vec!["--points", "50", "--stations", "12"]),
        ("star", vec!["--leaves", "9"]),
        ("clique", vec!["--n", "7"]),
        ("path", vec!["--n", "9"]),
        ("cycle", vec!["--n", "9"]),
        ("sunflower", vec!["--petals", "5", "--core", "2"]),
        ("f-partite", vec!["--f", "3", "--group-size", "3"]),
        ("hyper-star", vec!["--f", "3", "--delta", "6"]),
    ];
    for (family, extra) in cases {
        let out_path = dir.join(format!("{family}.mwhvc"));
        let out_str = out_path.to_string_lossy().into_owned();
        let mut args = vec!["gen", family, "--seed", "11", "--json", "--out", &out_str];
        args.extend(extra.iter());
        let gen = dcover(&args);
        assert!(gen.status.success(), "{family}: {gen:?}");
        let report = stdout_of(&gen);
        assert!(
            report.contains(&format!("\"family\": \"{family}\"")),
            "{report}"
        );
        assert!(report.contains("\"seed\": "), "seed recorded: {report}");
        // The generated instance solves.
        let solve = dcover(&["solve", &out_str, "--eps", "0.5"]);
        assert!(solve.status.success(), "{family}: {solve:?}");
    }
    // Seeded families are deterministic per seed; deterministic families
    // report a null seed.
    let a = dcover(&["gen", "uniform", "--n", "25", "--m", "40", "--seed", "3"]);
    let b = dcover(&["gen", "uniform", "--n", "25", "--m", "40", "--seed", "3"]);
    assert_eq!(stdout_of(&a), stdout_of(&b));
    let out_path = dir.join("det.mwhvc").to_string_lossy().into_owned();
    let det = dcover(&["gen", "clique", "--n", "5", "--json", "--out", &out_path]);
    assert!(stdout_of(&det).contains("\"seed\": null"), "{det:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_report_carries_cover_and_duals() {
    let sample = sample_path();
    let json = dcover(&["solve", &sample, "--json"]);
    assert!(json.status.success());
    let text = stdout_of(&json);
    assert!(text.contains("\"cover\": ["), "{text}");
    assert!(text.contains("\"duals\": ["), "{text}");
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(dcover(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve"]).status.code(), Some(2));
    assert_eq!(dcover(&["gen", "uniform"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve", "x", "--nope"]).status.code(), Some(2));
    // Runtime failure (unreadable file) exits 1.
    assert_eq!(
        dcover(&["solve", "/nonexistent.mwhvc"]).status.code(),
        Some(1)
    );
}
