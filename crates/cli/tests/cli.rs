//! Integration tests driving the real `dcover` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dcover(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dcover"))
        .args(args)
        .output()
        .expect("run dcover binary")
}

fn sample_path() -> String {
    // crates/cli -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("data/sample.mwhvc");
    root.to_string_lossy().into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_prints_usage() {
    let out = dcover(&["--help"]);
    assert!(out.status.success());
    assert!(stdout_of(&out).contains("USAGE"));
}

#[test]
fn solve_sample_human_and_json() {
    let sample = sample_path();
    let human = dcover(&["solve", &sample, "--eps", "0.5"]);
    assert!(human.status.success(), "{human:?}");
    let text = stdout_of(&human);
    assert!(text.contains("cover"), "{text}");
    assert!(text.contains("ratio <="), "{text}");

    let json = dcover(&["solve", &sample, "--eps", "0.5", "--json"]);
    assert!(json.status.success());
    let text = stdout_of(&json);
    assert!(text.contains("\"weight\":"), "{text}");
    assert!(text.contains("\"rounds\":"), "{text}");
    assert!(text.contains("\"ratio_upper_bound\":"), "{text}");

    // Parallel solve agrees on the certified weight (bit-identical engine).
    let par = dcover(&["solve", &sample, "--eps", "0.5", "--threads", "4", "--json"]);
    assert!(par.status.success());
    let get_weight = |s: &str| -> String {
        let i = s.find("\"weight\": ").expect("weight field") + 10;
        s[i..].chars().take_while(char::is_ascii_digit).collect()
    };
    assert_eq!(get_weight(&text), get_weight(&stdout_of(&par)));
}

#[test]
fn gen_then_solve_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dcover-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gen.mwhvc");
    let path_str = path.to_string_lossy().into_owned();
    let gen = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7", "--out",
        &path_str,
    ]);
    assert!(gen.status.success(), "{gen:?}");
    let solve = dcover(&["solve", &path_str, "--json"]);
    assert!(solve.status.success(), "{solve:?}");
    assert!(stdout_of(&solve).contains("\"n\": 40"));
    // Same seed, same instance: deterministic generation.
    let gen2 = dcover(&[
        "gen", "uniform", "--n", "40", "--m", "90", "--rank", "3", "--seed", "7",
    ]);
    assert!(gen2.status.success());
    assert_eq!(
        stdout_of(&gen2),
        std::fs::read_to_string(&path).unwrap(),
        "gen must be deterministic per seed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_solves_many_files_and_isolates_failures() {
    let sample = sample_path();
    let ok = dcover(&[
        "batch",
        &sample,
        &sample,
        &sample,
        "--threads",
        "2",
        "--json",
    ]);
    assert!(ok.status.success(), "{ok:?}");
    let text = stdout_of(&ok);
    assert!(text.contains("\"instances\": 3"), "{text}");
    assert!(text.contains("\"failed\": 0"), "{text}");
    assert!(text.contains("\"instances_per_sec\":"), "{text}");

    // One missing file: its entry fails, the others still solve, and the
    // exit code is non-zero.
    let mixed = dcover(&[
        "batch",
        &sample,
        "/nonexistent.mwhvc",
        "--threads",
        "2",
        "--json",
    ]);
    assert_eq!(mixed.status.code(), Some(1));
    let text = stdout_of(&mixed);
    assert!(text.contains("\"ok\": 1"), "{text}");
    assert!(text.contains("\"failed\": 1"), "{text}");
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(dcover(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve"]).status.code(), Some(2));
    assert_eq!(dcover(&["gen", "uniform"]).status.code(), Some(2));
    assert_eq!(dcover(&["solve", "x", "--nope"]).status.code(), Some(2));
    // Runtime failure (unreadable file) exits 1.
    assert_eq!(
        dcover(&["solve", "/nonexistent.mwhvc"]).status.code(),
        Some(1)
    );
}
