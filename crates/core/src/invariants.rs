//! Runtime checkers for the paper's invariants (Claims 1, 2, 4, 20).
//!
//! Arithmetic is `f64`, so every check uses a small relative tolerance;
//! violations beyond the tolerance indicate a real bug, not rounding.

use dcover_hypergraph::Hypergraph;

use crate::observer::{IterationSnapshot, Observer};
use crate::params::{beta, z_levels};
use crate::protocol::pow2_neg;

/// Default relative tolerance for floating-point invariant checks.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// An [`Observer`] that checks every paper invariant after every iteration
/// and records human-readable violations.
///
/// # Examples
///
/// ```
/// use dcover_core::{solve_reference, InvariantChecker, MwhvcConfig};
/// use dcover_hypergraph::from_edge_lists;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = from_edge_lists(3, &[&[0, 1], &[1, 2]])?;
/// let cfg = MwhvcConfig::new(0.5)?;
/// let mut checker = InvariantChecker::new(&g, &cfg);
/// solve_reference(&g, &cfg, &mut checker)?;
/// assert!(checker.violations().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    f: u32,
    epsilon: f64,
    beta: f64,
    z: u32,
    tolerance: f64,
    violations: Vec<String>,
    iterations_seen: u64,
}

impl InvariantChecker {
    /// Creates a checker for `g` under `config`.
    #[must_use]
    pub fn new(g: &Hypergraph, config: &crate::MwhvcConfig) -> Self {
        let f = g.rank().max(1);
        let epsilon = config.epsilon();
        Self {
            f,
            epsilon,
            beta: beta(f, epsilon),
            z: z_levels(f, epsilon),
            tolerance: DEFAULT_TOLERANCE,
            violations: Vec::new(),
            iterations_seen: 0,
        }
    }

    /// Overrides the relative tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// The violations recorded so far (empty = all invariants held).
    #[must_use]
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of snapshots checked.
    #[must_use]
    pub fn iterations_seen(&self) -> u64 {
        self.iterations_seen
    }

    fn record(&mut self, iteration: u64, what: String) {
        if self.violations.len() < 64 {
            self.violations
                .push(format!("iteration {iteration}: {what}"));
        }
    }
}

impl Observer for InvariantChecker {
    fn on_iteration(&mut self, g: &Hypergraph, s: &IterationSnapshot<'_>) {
        self.iterations_seen += 1;
        let tol = self.tolerance;
        let it = s.iteration;

        // Dual feasibility (Claim 2): δ ≥ 0 and Σ_{e∋v} δ(e) ≤ w(v).
        for (ei, &d) in s.duals.iter().enumerate() {
            if d < 0.0 {
                self.record(it, format!("negative dual {d} on edge {ei}"));
            }
        }
        for v in g.vertices() {
            let w = g.weight(v) as f64;
            let sum: f64 = g
                .incident_edges(v)
                .iter()
                .map(|&e| s.duals[e.index()])
                .sum();
            if sum > w * (1.0 + tol) {
                self.record(it, format!("packing violated at {v}: {sum} > {w}"));
            }
            // The incrementally-maintained dual_sums must agree with a fresh
            // summation (same additions in the same order -> tight bound).
            let tracked = s.dual_sums[v.index()];
            if (tracked - sum).abs() > (w.max(1.0)) * tol {
                self.record(
                    it,
                    format!("dual_sum drift at {v}: tracked {tracked}, fresh {sum}"),
                );
            }
        }

        // Claim 4: levels stay below z.
        for (vi, &l) in s.levels.iter().enumerate() {
            if l >= self.z && s.active[vi] {
                self.record(
                    it,
                    format!("active vertex v{vi} reached level {l} ≥ z = {}", self.z),
                );
            }
        }

        // Eq. (1) sandwich for active vertices (holds from iteration 1 on):
        // w(1 − 2^{−ℓ_i}) ≤ Σ δ_{i−1} ≤ w(1 − 2^{−(ℓ_i+1)}) — the levels
        // just updated, against the duals they were updated from.
        if it >= 1 {
            for v in g.vertices() {
                let vi = v.index();
                if !s.active[vi] {
                    continue;
                }
                let w = g.weight(v) as f64;
                let sum = s.prev_dual_sums[vi];
                let lo = w * (1.0 - pow2_neg(s.levels[vi]));
                let hi = w * (1.0 - pow2_neg(s.levels[vi] + 1));
                if sum < lo - w * tol || sum > hi + w * tol {
                    self.record(
                        it,
                        format!(
                            "Eq.(1) violated at {v}: {lo} ≤ {sum} ≤ {hi} fails (level {})",
                            s.levels[vi]
                        ),
                    );
                }
            }
        }

        // Claim 1: Σ_{e∈E'(v)} bid(e) ≤ 2^{−(ℓ+1)}·w(v) for v ∉ C.
        for v in g.vertices() {
            let vi = v.index();
            if s.in_cover[vi] || !s.active[vi] {
                continue;
            }
            let w = g.weight(v) as f64;
            let bid_sum: f64 = g
                .incident_edges(v)
                .iter()
                .filter(|&&e| !s.edge_covered[e.index()])
                .map(|&e| s.bids[e.index()])
                .sum();
            let cap = pow2_neg(s.levels[vi] + 1) * w;
            if bid_sum > cap * (1.0 + tol) {
                self.record(
                    it,
                    format!("Claim 1 violated at {v}: bids {bid_sum} > {cap}"),
                );
            }
        }

        // Claim 20 precondition: every cover member is β-tight.
        for v in g.vertices() {
            let vi = v.index();
            if !s.in_cover[vi] {
                continue;
            }
            let w = g.weight(v) as f64;
            if s.dual_sums[vi] < (1.0 - self.beta) * w * (1.0 - tol) {
                self.record(
                    it,
                    format!(
                        "cover member {v} is not β-tight: {} < {}",
                        s.dual_sums[vi],
                        (1.0 - self.beta) * w
                    ),
                );
            }
        }

        let _ = (self.f, self.epsilon); // retained for diagnostics
    }
}

/// Checks the end-to-end approximation guarantee of Corollary 3 /
/// Claim 20: `w(C) ≤ (f + ε) · Σ_e δ(e)` (the right side lower-bounds
/// `(f + ε) · OPT_fractional`).
#[must_use]
pub fn approximation_holds(
    g: &Hypergraph,
    cover_weight: u64,
    dual_total: f64,
    epsilon: f64,
    tolerance: f64,
) -> bool {
    if cover_weight == 0 {
        return true;
    }
    let f = g.rank().max(1) as f64;
    cover_weight as f64 <= (f + epsilon) * dual_total * (1.0 + tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::Observer;
    use crate::reference::solve_reference;
    use crate::MwhvcConfig;
    use dcover_hypergraph::from_edge_lists;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_run_has_no_violations() {
        let mut rng = StdRng::seed_from_u64(55);
        for (f, eps) in [(2usize, 1.0), (3, 0.4), (5, 0.1)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 40,
                    m: 100,
                    rank: f,
                    weights: WeightDist::Uniform { min: 1, max: 64 },
                },
                &mut rng,
            );
            let cfg = MwhvcConfig::new(eps).unwrap();
            let mut checker = InvariantChecker::new(&g, &cfg);
            let r = solve_reference(&g, &cfg, &mut checker).unwrap();
            assert!(
                checker.violations().is_empty(),
                "violations: {:?}",
                checker.violations()
            );
            assert!(checker.iterations_seen() > 0);
            assert!(approximation_holds(
                &g,
                r.weight,
                r.dual_total,
                eps,
                DEFAULT_TOLERANCE
            ));
        }
    }

    #[test]
    fn checker_detects_bad_duals() {
        let g = from_edge_lists(2, &[&[0, 1]]).unwrap();
        let cfg = MwhvcConfig::new(0.5).unwrap();
        let mut checker = InvariantChecker::new(&g, &cfg);
        // A snapshot with an infeasible dual (w = 1, δ = 5).
        let snap = crate::observer::IterationSnapshot {
            iteration: 1,
            levels: &[0, 0],
            duals: &[5.0],
            bids: &[0.1],
            edge_covered: &[false],
            in_cover: &[false, false],
            active: &[true, true],
            dual_sums: &[5.0, 5.0],
            prev_dual_sums: &[5.0, 5.0],
        };
        checker.on_iteration(&g, &snap);
        assert!(!checker.violations().is_empty());
    }

    #[test]
    fn checker_detects_non_tight_cover_member() {
        let g = from_edge_lists(2, &[&[0, 1]]).unwrap();
        let cfg = MwhvcConfig::new(0.5).unwrap();
        let mut checker = InvariantChecker::new(&g, &cfg);
        let snap = crate::observer::IterationSnapshot {
            iteration: 1,
            levels: &[0, 0],
            duals: &[0.1],
            bids: &[0.05],
            edge_covered: &[true],
            in_cover: &[true, false],
            active: &[false, false],
            dual_sums: &[0.1, 0.1],
            prev_dual_sums: &[0.1, 0.1],
        };
        checker.on_iteration(&g, &snap);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.contains("not β-tight")));
    }

    #[test]
    fn approximation_helper() {
        let g = from_edge_lists(2, &[&[0, 1]]).unwrap();
        assert!(approximation_holds(&g, 0, 0.0, 0.5, 1e-9));
        assert!(approximation_holds(&g, 2, 1.0, 0.5, 1e-9)); // 2 ≤ 2.5·1
        assert!(!approximation_holds(&g, 3, 1.0, 0.5, 1e-9)); // 3 > 2.5
    }
}
