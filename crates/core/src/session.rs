//! Batched multi-instance serving: a reusable solve session.
//!
//! [`SolveSession`] is the batch-shaped façade over the queue-based
//! [`SolveService`](crate::SolveService): it owns one service (and thus
//! one persistent [`SimPool`](dcover_congest::SimPool) worker pool with
//! recycled engine arenas) and serves two shapes of traffic:
//!
//! * [`solve`](SolveSession::solve) — one instance, chunk-parallel across
//!   the pool (the worker threads and arenas are reused from the session
//!   instead of being rebuilt per call);
//! * [`solve_batch`](SolveSession::solve_batch) /
//!   [`solve_batch_owned`](SolveSession::solve_batch_owned) /
//!   [`solve_batch_shared`](SolveSession::solve_batch_shared) — many
//!   instances, **instance-parallel**: each is submitted to the service
//!   queue and the tickets are redeemed in input order. Workers pull the
//!   next instance as soon as they finish the current one (dynamic load
//!   balancing over mixed sizes).
//!
//! The batch calls are thin wrappers: one `submit` per instance plus one
//! `wait` per ticket — callers that want results in *completion* order,
//! non-blocking ingestion, or backpressure handling should use the
//! [`SolveService`](crate::SolveService) API directly.
//!
//! Results are **bit-identical** to per-instance
//! [`MwhvcSolver::solve`](crate::MwhvcSolver::solve) in every mode — the
//! schedulers share one engine with a determinism contract, and arenas
//! only recycle capacity, never state. One bad instance in a batch yields
//! its own `Err` entry; it cannot crash the session or poison its
//! neighbors.
//!
//! Every batch entry point is **zero-copy** in instance data: the
//! hypergraph's CSR payload lives behind a shared allocation, so
//! [`solve_batch`] hands each borrowed instance to its task as a cheap
//! shared handle (`Hypergraph::clone` is a refcount bump — the PR 3
//! "1 clone/instance" limitation is gone), [`solve_batch_owned`] moves
//! the instances in, and [`solve_batch_shared`] shares the caller's
//! `Arc<Hypergraph>` handles. `tests/zero_copy.rs` pins all three paths
//! at exactly zero payload copies.
//!
//! [`solve_batch`]: SolveSession::solve_batch
//! [`solve_batch_owned`]: SolveSession::solve_batch_owned
//! [`solve_batch_shared`]: SolveSession::solve_batch_shared
//!
//! # Examples
//!
//! ```
//! use dcover_core::{MwhvcConfig, SolveSession};
//! use dcover_hypergraph::from_weighted_edge_lists;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut session = SolveSession::new(MwhvcConfig::new(0.5)?, 4);
//! let a = from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]])?;
//! let b = from_weighted_edge_lists(&[2, 3], &[&[0, 1]])?;
//! let results = session.solve_batch(&[a, b]);
//! assert_eq!(results.len(), 2);
//! assert_eq!(results[0].as_ref().unwrap().weight, 1);
//! assert_eq!(results[1].as_ref().unwrap().weight, 2);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use dcover_congest::ParallelSimulator;
use dcover_hypergraph::Hypergraph;

use crate::error::SolveError;
use crate::params::MwhvcConfig;
use crate::protocol::build_network;
use crate::service::{SolveService, SubmitError, Ticket};
use crate::solver::{CoverResult, MwhvcSolver};

/// A reusable serving session: the batch-shaped façade over one
/// [`SolveService`] (one persistent worker pool, recycled engine arenas).
/// See the module-level docs for the serving model.
#[derive(Debug)]
pub struct SolveSession {
    solver: MwhvcSolver,
    service: SolveService,
}

impl SolveSession {
    /// Creates a session with `threads` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(config: MwhvcConfig, threads: usize) -> Self {
        Self {
            solver: MwhvcSolver::new(config.clone()),
            service: SolveService::new(config, threads),
        }
    }

    /// Creates a session with the given ε and default settings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_epsilon(epsilon: f64, threads: usize) -> Result<Self, SolveError> {
        Ok(Self::new(MwhvcConfig::new(epsilon)?, threads))
    }

    /// The session's configuration.
    #[must_use]
    pub fn config(&self) -> &MwhvcConfig {
        self.solver.config()
    }

    /// Number of persistent worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.service.threads()
    }

    /// The underlying queue-based service, for callers that want to mix
    /// batch calls with asynchronous submission (non-blocking ingestion,
    /// backpressure, completion-order redemption) on the same pool.
    #[must_use]
    pub fn service(&self) -> &SolveService {
        &self.service
    }

    /// Solves one instance, chunk-parallel across the session's pool.
    ///
    /// Identical semantics (and bit-identical results) to
    /// [`MwhvcSolver::solve`] / [`solve_parallel`](MwhvcSolver::solve_parallel),
    /// but the worker threads and engine arenas are reused from the
    /// session instead of being rebuilt per call.
    ///
    /// # Errors
    ///
    /// Same as [`MwhvcSolver::solve`]. The session (pool and arenas)
    /// remains valid and reusable after an error.
    pub fn solve(&mut self, g: &Hypergraph) -> Result<CoverResult, SolveError> {
        self.solver.validate(g)?;
        if g.n() == 0 {
            return Ok(CoverResult::empty());
        }
        let (topo, nodes) = build_network(g, self.solver.config());
        let limit = self.solver.round_limit(g);
        let mut sim = ParallelSimulator::with_pool_partition(
            topo,
            nodes,
            self.service.take_pool(),
            self.solver.config().partition(),
        )
        .with_budget(self.solver.budget_for(g))
        .with_trace(self.solver.config().trace());
        let run = sim.run(limit);
        let (nodes, report, pool) = sim.into_pool();
        self.service.put_pool(pool);
        run?;
        Ok(self.solver.assemble(g, &nodes, report))
    }

    /// Solves a batch of independent instances concurrently over the
    /// session's pool — a thin wrapper that submits every instance to the
    /// [`SolveService`] queue and redeems the tickets in input order.
    ///
    /// Returns one entry per instance, in input order. Every `Ok` result
    /// is bit-identical to what per-instance [`MwhvcSolver::solve`] would
    /// return; every invalid instance yields its own `Err` without
    /// affecting the others.
    ///
    /// Tasks must outlive the borrow of `instances` (they run on pool
    /// threads), so each instance is Arc-wrapped internally — a refcount
    /// bump per entry, **never a copy of the instance data** (the CSR
    /// payload is shared behind the handle). Callers that can give up
    /// ownership may use [`solve_batch_owned`](Self::solve_batch_owned),
    /// and callers already holding `Arc<Hypergraph>`s may use
    /// [`solve_batch_shared`](Self::solve_batch_shared); all three paths
    /// are equally zero-copy.
    pub fn solve_batch(
        &mut self,
        instances: &[Hypergraph],
    ) -> Vec<Result<CoverResult, SolveError>> {
        self.redeem(
            instances
                .iter()
                .map(|g| self.submit_one(Arc::new(g.clone())))
                .collect(),
        )
    }

    /// Like [`solve_batch`](Self::solve_batch), but takes the instances by
    /// value: each moves into its task, so no instance is deep-copied.
    pub fn solve_batch_owned(
        &mut self,
        instances: Vec<Hypergraph>,
    ) -> Vec<Result<CoverResult, SolveError>> {
        self.redeem(
            instances
                .into_iter()
                .map(|g| self.submit_one(Arc::new(g)))
                .collect(),
        )
    }

    /// Like [`solve_batch`](Self::solve_batch) for instances the caller
    /// already shares: submits each `Arc<Hypergraph>` handle **zero-copy**
    /// (a refcount increment per instance; the payload is never cloned)
    /// and leaves the caller's handles untouched.
    pub fn solve_batch_shared(
        &mut self,
        instances: &[Arc<Hypergraph>],
    ) -> Vec<Result<CoverResult, SolveError>> {
        self.redeem(
            instances
                .iter()
                .map(|g| self.submit_one(Arc::clone(g)))
                .collect(),
        )
    }

    /// Blocking submit of one batch entry under the session's ε.
    fn submit_one(&self, g: Arc<Hypergraph>) -> Result<Ticket, SubmitError> {
        self.service.submit(g, self.solver.config().epsilon())
    }

    /// Waits the batch tickets out in input order.
    fn redeem(
        &self,
        tickets: Vec<Result<Ticket, SubmitError>>,
    ) -> Vec<Result<CoverResult, SolveError>> {
        tickets
            .into_iter()
            .map(|ticket| match ticket {
                Ok(t) => t.wait(),
                // Only possible if the inner service was shut down
                // through `service()` — surface it per entry.
                Err(SubmitError::Invalid(e)) => Err(e),
                Err(_) => Err(SolveError::ShutDown),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use dcover_hypergraph::{from_edge_lists, from_weighted_edge_lists};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_instances(count: usize, seed: u64) -> Vec<Hypergraph> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| {
                random_uniform(
                    &RandomUniform {
                        n: 20 + (i * 7) % 40,
                        m: 40 + (i * 13) % 90,
                        rank: 2 + i % 3,
                        weights: WeightDist::Uniform {
                            min: 1,
                            max: 5 + (i as u64 % 20),
                        },
                    },
                    &mut rng,
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_are_bit_identical_to_per_instance_solve() {
        let instances = mixed_instances(12, 3);
        let solver = MwhvcSolver::with_epsilon(0.5).unwrap();
        let mut session = SolveSession::with_epsilon(0.5, 4).unwrap();
        let batch = session.solve_batch(&instances);
        assert_eq!(batch.len(), instances.len());
        for (i, (g, res)) in instances.iter().zip(&batch).enumerate() {
            let individual = solver.solve(g).unwrap();
            let batched = res.as_ref().unwrap();
            assert_eq!(batched.cover, individual.cover, "instance {i}");
            assert_eq!(batched.duals, individual.duals, "instance {i}");
            assert_eq!(batched.levels, individual.levels, "instance {i}");
            assert_eq!(batched.weight, individual.weight, "instance {i}");
            assert_eq!(batched.report, individual.report, "instance {i}");
        }
    }

    #[test]
    fn session_solve_matches_solver_solve() {
        let instances = mixed_instances(5, 9);
        let solver = MwhvcSolver::with_epsilon(0.25).unwrap();
        let mut session = SolveSession::with_epsilon(0.25, 3).unwrap();
        for g in &instances {
            let a = solver.solve(g).unwrap();
            let b = session.solve(g).unwrap();
            assert_eq!(a.cover, b.cover);
            assert_eq!(a.duals, b.duals);
            assert_eq!(a.levels, b.levels);
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn owned_and_shared_batches_match_borrowed_batch() {
        let instances = mixed_instances(6, 21);
        let mut session = SolveSession::with_epsilon(0.5, 3).unwrap();
        let borrowed = session.solve_batch(&instances);
        let shared_instances: Vec<Arc<Hypergraph>> =
            instances.iter().cloned().map(Arc::new).collect();
        let shared = session.solve_batch_shared(&shared_instances);
        let owned = session.solve_batch_owned(instances);
        for ((a, b), c) in borrowed.iter().zip(&owned).zip(&shared) {
            let (a, b, c) = (
                a.as_ref().unwrap(),
                b.as_ref().unwrap(),
                c.as_ref().unwrap(),
            );
            assert_eq!(a.cover, b.cover);
            assert_eq!(a.duals, b.duals);
            assert_eq!(a.report, b.report);
            assert_eq!(a.cover, c.cover);
            assert_eq!(a.duals, c.duals);
            assert_eq!(a.report, c.report);
        }
    }

    #[test]
    fn bad_instance_in_batch_fails_alone() {
        let good = from_weighted_edge_lists(&[2, 3], &[&[0, 1]]).unwrap();
        let oversized = from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap();
        let mut session = SolveSession::with_epsilon(0.5, 2).unwrap();
        let results = session.solve_batch(&[good.clone(), oversized, good.clone()]);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SolveError::WeightTooLarge { vertex: 0, .. })
        ));
        assert!(results[2].is_ok());
        // The session stays serviceable afterwards.
        assert!(session.solve(&good).is_ok());
    }

    #[test]
    fn session_survives_solve_error() {
        let oversized = from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap();
        let good = from_edge_lists(3, &[&[0, 1], &[1, 2]]).unwrap();
        let mut session = SolveSession::with_epsilon(0.5, 2).unwrap();
        assert!(session.solve(&oversized).is_err());
        let r = session.solve(&good).unwrap();
        assert!(r.cover.is_cover_of(&good));
    }

    #[test]
    fn empty_batch_and_empty_instance() {
        let mut session = SolveSession::with_epsilon(0.5, 2).unwrap();
        assert!(session.solve_batch(&[]).is_empty());
        let empty = from_edge_lists(0, &[]).unwrap();
        let results = session.solve_batch(std::slice::from_ref(&empty));
        assert_eq!(results[0].as_ref().unwrap().weight, 0);
        assert_eq!(session.solve(&empty).unwrap().iterations, 0);
    }

    #[test]
    fn repeated_batches_reuse_the_same_pool() {
        // Many batches through one session: results stay correct while
        // arenas recycle across batches (this is the serving loop shape).
        let mut session = SolveSession::with_epsilon(1.0, 4).unwrap();
        for round in 0..3 {
            let instances = mixed_instances(8, 100 + round);
            let results = session.solve_batch(&instances);
            for (g, r) in instances.iter().zip(&results) {
                let r = r.as_ref().unwrap();
                assert!(r.cover.is_cover_of(g));
                let bound = g.rank().max(1) as f64 + 1.0;
                assert!(r.ratio_upper_bound() <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn batch_after_service_shutdown_reports_per_entry() {
        let mut session = SolveSession::with_epsilon(0.5, 2).unwrap();
        session.service().shutdown();
        let results = session.solve_batch(&mixed_instances(3, 5));
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(matches!(r, Err(SolveError::ShutDown)), "got {r:?}");
        }
        // Chunk-parallel solve still works (the rebuilt pool serves round
        // jobs even though the submission queue stays closed).
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2]]).unwrap();
        assert!(session.solve(&g).is_ok());
    }
}
