//! Algorithm MWHVC: the time-optimal deterministic distributed
//! `(f + ε)`-approximation for **Minimum Weight Hypergraph Vertex Cover** in
//! the CONGEST model, from *“Optimal Distributed Covering Algorithms”*
//! (Ben-Basat, Even, Kawarabayashi, Schwartzman; DISC 2019).
//!
//! The problem: given a hypergraph of rank `f` (equivalently, a weighted set
//! cover instance with element frequency ≤ f) with positive vertex weights,
//! find a low-weight set of vertices intersecting every hyperedge. The
//! algorithm is primal-dual: hyperedges grow dual *bids* multiplicatively
//! (factor `α`), vertices track how much of their weight is consumed via
//! *levels* (`ℓ(v) ≈ log` of the covered fraction), halve incident bids when
//! they level up, and join the cover once *β-tight*
//! (`Σ_{e∋v} δ(e) ≥ (1−β)·w(v)` with `β = ε/(f+ε)`). For constant `f` and
//! `ε`, the round complexity `O(log Δ / log log Δ)` matches the KMW lower
//! bound — and is independent of both the weights and the number of
//! vertices, the paper's headline property.
//!
//! # Entry points
//!
//! * [`MwhvcSolver`] — run the real distributed protocol on the CONGEST
//!   simulator (sequential or thread-pool scheduler) and get a
//!   [`CoverResult`] with the cover, the dual certificate, and communication
//!   metrics.
//! * [`solve_reference`] — the centralized mirror of the same algorithm
//!   (identical covers/levels/duals/iterations, no messaging overhead) with
//!   [`Observer`] hooks for full-state inspection and the
//!   [`InvariantChecker`].
//! * [`analysis`] — explicit versions of the paper's round bounds
//!   (Theorem 8/9) used to validate measured complexity.
//! * [`SolveService`] — the asynchronous serving layer: a bounded
//!   submission queue with backpressure in front of one persistent worker
//!   pool. [`SolveService::submit`] takes a shared `Arc<Hypergraph>`
//!   (zero-copy) and returns a [`Ticket`] to redeem for the result;
//!   [`SolveService::try_submit`] sheds load instead of blocking;
//!   [`SolveService::shutdown`] drains gracefully.
//! * [`SolveSession`] — the batch-shaped façade over the same service:
//!   [`SolveSession::solve_batch`] submits many independent instances and
//!   redeems their tickets in input order (bit-identical to per-instance
//!   solves).
//!
//! # Example
//!
//! ```
//! use dcover_core::MwhvcSolver;
//! use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = random_uniform(
//!     &RandomUniform { n: 50, m: 120, rank: 3, weights: WeightDist::Uniform { min: 1, max: 9 } },
//!     &mut StdRng::seed_from_u64(1),
//! );
//! let result = MwhvcSolver::with_epsilon(0.5)?.solve(&g)?;
//! assert!(result.cover.is_cover_of(&g));
//! // Certified: weight ≤ (f + ε) · (dual lower bound on OPT).
//! assert!(result.ratio_upper_bound() <= 3.5);
//! println!("rounds = {}", result.rounds());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod certificate;
mod error;
mod invariants;
mod observer;
mod params;
pub mod protocol;
mod reference;
mod service;
mod session;
mod solver;
mod warm;

pub use certificate::{Certificate, CertificateError};
/// The scheduling class of a service submission (re-exported from the
/// pool layer): `Interactive` requests dequeue before `Bulk` ones, FIFO
/// within a class. See [`SubmitOptions`].
pub use dcover_congest::TaskClass as RequestClass;
pub use dcover_congest::{
    CancelToken, ClassMetrics, Interrupt, InterruptReason, LatencyHistogram, PartitionPolicy,
    TaskTiming,
};
pub use error::SolveError;
pub use invariants::{approximation_holds, InvariantChecker, DEFAULT_TOLERANCE};
pub use observer::{HistoryObserver, IterationSnapshot, IterationStats, NullObserver, Observer};
pub use params::{
    beta, theorem9_alpha, try_beta, try_theorem9_alpha, try_z_levels, z_levels, AlphaPolicy,
    MwhvcConfig, Variant,
};
pub use protocol::{
    build_network, build_network_warm, iteration_of_round, iterations_of_rounds, MwhvcMsg,
    MwhvcNode, NodeRole,
};
pub use reference::{solve_reference, ReferenceResult};
pub use service::{ServiceMetrics, SolveService, SubmitError, SubmitOptions, Ticket};
pub use session::SolveSession;
pub use solver::{CoverResult, MwhvcSolver};
pub use warm::WarmState;
