//! The protocol's message vocabulary with CONGEST bit sizes.

use dcover_congest::{bits_for_value, Message};

/// Tag bits distinguishing the eleven message kinds.
const TAG_BITS: u64 = 4;

/// Messages of Algorithm MWHVC. Every payload is `O(log n)` bits under the
/// paper's assumptions (weights and degrees polynomial in `n`, level deltas
/// at most `z = O(log(f/ε))`), which the simulator's
/// [`BitBudget`](dcover_congest::BitBudget) verifies at runtime.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MwhvcMsg {
    /// Round 0, vertex → edge: local weight and degree.
    WeightDeg {
        /// `w(v)`.
        weight: u64,
        /// `|E(v)|`.
        degree: u64,
    },
    /// Round 1, edge → vertex: weight and degree of the minimum-normalized-
    /// weight member `v*`, plus the resolved multiplier `α(e)` (Appendix B
    /// items 1 and 5; shipping α directly is equivalent to shipping the
    /// local maximum degree it is computed from).
    MinNorm {
        /// `w(v*)`.
        weight: u64,
        /// `|E(v*)|`.
        degree: u64,
        /// `α(e)` under the configured policy.
        alpha: u32,
    },
    /// Round 0 in a **warm-started** run, vertex → edge: weight, degree,
    /// and the level the vertex was seeded at (so edges can pre-halve
    /// their bids to match the seeded duals — the same pacing the paper's
    /// step 3d applies online).
    WeightDegWarm {
        /// `w(v)`.
        weight: u64,
        /// `|E(v)|`.
        degree: u64,
        /// The seeded level `ℓ(v)` (≤ z).
        level: u32,
    },
    /// Round 1 in a **warm-started** run, edge → vertex: like
    /// [`MinNorm`](MwhvcMsg::MinNorm) plus the total seeded halvings
    /// `Σ_{u∈e} ℓ(u)`, so every member reconstructs the identical
    /// pre-halved bid `bid₀(e)·2^{−Σℓ}` (the bid the cold protocol would
    /// have reached after the same level raises).
    MinNormWarm {
        /// `w(v*)`.
        weight: u64,
        /// `|E(v*)|`.
        degree: u64,
        /// `α(e)` under the configured policy.
        alpha: u32,
        /// Total seeded halvings `Σ_{u∈e} ℓ(u)` (≤ f·z).
        halvings: u32,
    },
    /// V1, vertex → edge: the vertex became β-tight and joined the cover
    /// (step 3a).
    Join,
    /// V1, vertex → edge: the vertex's level rose `count` times this
    /// iteration; the edge must halve its bid accordingly (step 3d).
    /// `count` is usually 0.
    LevelInc {
        /// Number of level increments (≤ z).
        count: u32,
    },
    /// E1, edge → vertex: the edge is covered and terminates (step 3b).
    Covered,
    /// E1, edge → vertex: the bid was halved `count` times in total this
    /// iteration (Appendix B item 3).
    Halved {
        /// Total halvings `Σ_{v∈e} k_v` (≤ f·z over the whole run).
        count: u32,
    },
    /// V2, vertex → edge: the vertex's bids are small enough to grow
    /// (step 3e).
    Raise,
    /// V2, vertex → edge: growing would risk the vertex's packing
    /// constraint (step 3e).
    Stuck,
    /// E2, edge → vertex: whether the bid was multiplied by α(e); the
    /// vertex then adds the (possibly raised) bid to `δ(e)` (step 3f).
    RaiseApplied {
        /// True iff every member voted `Raise`.
        raised: bool,
    },
}

impl Message for MwhvcMsg {
    fn bit_size(&self) -> u64 {
        TAG_BITS
            + match *self {
                MwhvcMsg::WeightDeg { weight, degree } => {
                    bits_for_value(weight) + bits_for_value(degree)
                }
                MwhvcMsg::MinNorm {
                    weight,
                    degree,
                    alpha,
                } => {
                    bits_for_value(weight)
                        + bits_for_value(degree)
                        + bits_for_value(u64::from(alpha))
                }
                MwhvcMsg::WeightDegWarm {
                    weight,
                    degree,
                    level,
                } => {
                    bits_for_value(weight)
                        + bits_for_value(degree)
                        + bits_for_value(u64::from(level))
                }
                MwhvcMsg::MinNormWarm {
                    weight,
                    degree,
                    alpha,
                    halvings,
                } => {
                    bits_for_value(weight)
                        + bits_for_value(degree)
                        + bits_for_value(u64::from(alpha))
                        + bits_for_value(u64::from(halvings))
                }
                MwhvcMsg::Join | MwhvcMsg::Covered | MwhvcMsg::Raise | MwhvcMsg::Stuck => 0,
                MwhvcMsg::LevelInc { count } | MwhvcMsg::Halved { count } => {
                    bits_for_value(u64::from(count))
                }
                MwhvcMsg::RaiseApplied { .. } => 1,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_payload() {
        let small = MwhvcMsg::WeightDeg {
            weight: 1,
            degree: 1,
        };
        let big = MwhvcMsg::WeightDeg {
            weight: 1 << 40,
            degree: 1 << 20,
        };
        assert_eq!(small.bit_size(), TAG_BITS + 2);
        assert_eq!(big.bit_size(), TAG_BITS + 41 + 21);
    }

    #[test]
    fn flag_messages_are_tag_only() {
        assert_eq!(MwhvcMsg::Join.bit_size(), TAG_BITS);
        assert_eq!(MwhvcMsg::Covered.bit_size(), TAG_BITS);
        assert_eq!(MwhvcMsg::Raise.bit_size(), TAG_BITS);
        assert_eq!(MwhvcMsg::Stuck.bit_size(), TAG_BITS);
        assert_eq!(
            MwhvcMsg::RaiseApplied { raised: true }.bit_size(),
            TAG_BITS + 1
        );
    }

    #[test]
    fn count_messages_log_sized() {
        assert_eq!(MwhvcMsg::LevelInc { count: 0 }.bit_size(), TAG_BITS + 1);
        assert_eq!(MwhvcMsg::Halved { count: 1000 }.bit_size(), TAG_BITS + 10);
    }

    #[test]
    fn warm_messages_cost_their_extra_field() {
        let cold = MwhvcMsg::WeightDeg {
            weight: 9,
            degree: 4,
        };
        let warm = MwhvcMsg::WeightDegWarm {
            weight: 9,
            degree: 4,
            level: 5,
        };
        assert_eq!(warm.bit_size(), cold.bit_size() + 3);
        let cold = MwhvcMsg::MinNorm {
            weight: 9,
            degree: 4,
            alpha: 2,
        };
        let warm = MwhvcMsg::MinNormWarm {
            weight: 9,
            degree: 4,
            alpha: 2,
            halvings: 15,
        };
        assert_eq!(warm.bit_size(), cold.bit_size() + 4);
    }
}
