//! The distributed protocol implementing Algorithm MWHVC (§3.2, executed in
//! CONGEST per Appendix B).
//!
//! # Round schedule
//!
//! Each *iteration* of the paper's algorithm takes 4 simulator rounds, after
//! 2 initialization rounds:
//!
//! | round | sender | message | paper step |
//! |-------|--------|---------|------------|
//! | 0 | vertex | `WeightDeg{w(v), |E(v)|}` | iteration 0 collect |
//! | 1 | edge | `MinNorm{w(v*), |E(v*)|, α(e)}` | iteration 0 bid |
//! | 2 + 4k (**V1**) | vertex | `Join` or `LevelInc{k_v}` | 3a, 3d |
//! | 3 + 4k (**E1**) | edge | `Covered` or `Halved{Σ k_v}` | 3b, 3(d)ii |
//! | 4 + 4k (**V2**) | vertex | `Raise` / `Stuck` | 3c, 3e |
//! | 5 + 4k (**E2**) | edge | `RaiseApplied{bool}` | 3f |
//!
//! Dual bookkeeping lives entirely on the vertex side: every member of an
//! edge reconstructs the same `bid(e)` trajectory from the same broadcast
//! values using the *identical* floating-point operations (the helpers
//! below), so all copies agree bit-for-bit and the edge nodes never do
//! arithmetic at all — they only aggregate one-bit votes and halving counts,
//! exactly the coordination role the paper gives them.

pub(crate) mod edge;
pub(crate) mod msg;
pub(crate) mod node;
pub(crate) mod vertex;

pub use msg::MwhvcMsg;
pub use node::{build_network, build_network_warm, MwhvcNode, NodeRole};

/// Rounds consumed by initialization (iteration 0).
pub(crate) const INIT_ROUNDS: u64 = 2;
/// Simulator rounds per algorithm iteration.
pub(crate) const ROUNDS_PER_ITERATION: u64 = 4;

/// Phase of the 4-round iteration cycle; see the module table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Vertex: absorb duals, β-tightness check, level increments.
    V1,
    /// Edge: covered propagation or halving aggregation.
    E1,
    /// Vertex: prune covered edges, raise/stuck decision.
    V2,
    /// Edge: all-raise detection, dual increment broadcast.
    E2,
}

impl Phase {
    /// The phase of simulator round `round` (must be ≥ [`INIT_ROUNDS`]).
    pub(crate) fn of_round(round: u64) -> Phase {
        debug_assert!(round >= INIT_ROUNDS);
        match (round - INIT_ROUNDS) % ROUNDS_PER_ITERATION {
            0 => Phase::V1,
            1 => Phase::E1,
            2 => Phase::V2,
            _ => Phase::E2,
        }
    }
}

/// The iteration number executing at simulator round `round` (1-based, as in
/// the paper; iteration 0 is initialization).
#[must_use]
pub fn iteration_of_round(round: u64) -> u64 {
    if round < INIT_ROUNDS {
        0
    } else {
        (round - INIT_ROUNDS) / ROUNDS_PER_ITERATION + 1
    }
}

/// Number of full iterations contained in a run of `rounds` simulator
/// rounds.
#[must_use]
pub fn iterations_of_rounds(rounds: u64) -> u64 {
    if rounds <= INIT_ROUNDS {
        0
    } else {
        (rounds - INIT_ROUNDS).div_ceil(ROUNDS_PER_ITERATION)
    }
}

/// The first bid of an edge: `bid₀(e) = w(v*) / (2·|E(v*)|)` where `v*`
/// minimizes the normalized weight (§3.2 iteration 0).
#[inline]
#[must_use]
pub(crate) fn initial_bid(weight: u64, degree: u64) -> f64 {
    debug_assert!(degree > 0);
    weight as f64 / (2.0 * degree as f64)
}

/// Applies `count` halvings to a bid (step 3(d)ii). All replicas use exactly
/// this function so float trajectories agree bit-for-bit.
#[inline]
#[must_use]
pub(crate) fn apply_halvings(bid: f64, count: u32) -> f64 {
    bid * 0.5_f64.powi(count as i32)
}

/// Applies the multiplicative raise (step 3f).
#[inline]
#[must_use]
pub(crate) fn apply_raise(bid: f64, alpha: u32) -> f64 {
    bid * f64::from(alpha)
}

/// `2^{-k}` with the same operation everywhere.
#[inline]
#[must_use]
pub(crate) fn pow2_neg(k: u32) -> f64 {
    0.5_f64.powi(k as i32)
}

/// Relative slack for the level-threshold comparison. Dual sums are
/// accumulated incrementally in `f64`; a drift of a few ULPs above a
/// threshold that is attained with *equality* in exact arithmetic would
/// otherwise trigger a spurious extra level increment (observable as a
/// violation of Corollary 21 in the HalfBid variant). The slack errs toward
/// leveling one iteration later, which is always safe: levels only pace bid
/// growth, and Eq. (1)'s upper bound is checked with a larger tolerance.
pub(crate) const LEVEL_SLACK: f64 = 1e-12;

/// Step 3d's loop condition, `Σδ > w·(1 − 2^{−(ℓ+1)})`, with the shared
/// slack. Every replica (distributed vertices and the centralized reference)
/// must use exactly this function.
#[inline]
#[must_use]
pub(crate) fn should_level_up(dual_sum: f64, weight: f64, level: u32) -> bool {
    dual_sum > weight * (1.0 - pow2_neg(level + 1)) * (1.0 + LEVEL_SLACK)
}

/// Exact comparison of normalized weights `w_a/d_a < w_b/d_b` via cross
/// multiplication in `u128` — avoids float ties when picking `v*`.
#[inline]
#[must_use]
pub(crate) fn norm_weight_less(wa: u64, da: u64, wb: u64, db: u64) -> bool {
    u128::from(wa) * u128::from(db) < u128::from(wb) * u128::from(da)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_cycle() {
        assert_eq!(Phase::of_round(2), Phase::V1);
        assert_eq!(Phase::of_round(3), Phase::E1);
        assert_eq!(Phase::of_round(4), Phase::V2);
        assert_eq!(Phase::of_round(5), Phase::E2);
        assert_eq!(Phase::of_round(6), Phase::V1);
    }

    #[test]
    fn iteration_numbering() {
        assert_eq!(iteration_of_round(0), 0);
        assert_eq!(iteration_of_round(1), 0);
        assert_eq!(iteration_of_round(2), 1);
        assert_eq!(iteration_of_round(5), 1);
        assert_eq!(iteration_of_round(6), 2);
    }

    #[test]
    fn iterations_of_rounds_counts_partials() {
        assert_eq!(iterations_of_rounds(0), 0);
        assert_eq!(iterations_of_rounds(2), 0);
        assert_eq!(iterations_of_rounds(3), 1); // one partial iteration
        assert_eq!(iterations_of_rounds(6), 1);
        assert_eq!(iterations_of_rounds(7), 2);
    }

    #[test]
    fn numeric_helpers() {
        assert_eq!(initial_bid(10, 5), 1.0);
        assert_eq!(apply_halvings(8.0, 3), 1.0);
        assert_eq!(apply_raise(1.5, 4), 6.0);
        assert_eq!(pow2_neg(3), 0.125);
    }

    #[test]
    fn norm_weight_comparison_is_exact() {
        // 1/3 < 2/6 is false (equal); 1/3 < 2/5 is true.
        assert!(!norm_weight_less(1, 3, 2, 6));
        assert!(norm_weight_less(1, 3, 2, 5));
        assert!(!norm_weight_less(2, 5, 1, 3));
        // Huge values that would overflow u64 multiplication.
        let big = u64::MAX / 2;
        assert!(norm_weight_less(big - 1, big, big, big - 1));
    }
}
