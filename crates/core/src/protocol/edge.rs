//! The hyperedge (client) state machine.
//!
//! Edges do no numeric work: they pick the minimum-normalized-weight member
//! in iteration 0, aggregate halving counts, detect unanimous raise votes,
//! and propagate coverage — pure `O(f)`-fan-in coordination, as in the
//! paper.

use dcover_congest::{Ctx, Status};

use super::msg::MwhvcMsg;
use super::{norm_weight_less, Phase};
use crate::params::AlphaPolicy;

/// Per-edge program state.
#[derive(Clone, Debug)]
pub(crate) struct EdgeNode {
    size: usize,
    policy: AlphaPolicy,
    f: u32,
    eps: f64,
    global_delta: u32,
    /// Resolved at round 1; 0 until then.
    alpha: u32,
    covered: bool,
    /// Warm-started runs receive seeded levels in round 0 and ship the
    /// matching pre-halving count with the initial bid.
    warm: bool,
}

impl EdgeNode {
    pub(crate) fn new(
        size: usize,
        policy: AlphaPolicy,
        f: u32,
        eps: f64,
        global_delta: u32,
    ) -> Self {
        debug_assert!(size > 0, "hyperedges are never empty");
        Self {
            size,
            policy,
            f,
            eps,
            global_delta,
            alpha: 0,
            covered: false,
            warm: false,
        }
    }

    /// An edge of a warm-started network (identical coordination role; the
    /// only difference is the init-round message vocabulary).
    pub(crate) fn new_warm(
        size: usize,
        policy: AlphaPolicy,
        f: u32,
        eps: f64,
        global_delta: u32,
    ) -> Self {
        Self {
            warm: true,
            ..Self::new(size, policy, f, eps, global_delta)
        }
    }

    /// Whether the edge terminated covered (always true after a completed
    /// run).
    pub(crate) fn is_covered(&self) -> bool {
        self.covered
    }

    /// The multiplier α(e) resolved in round 1 (0 before that).
    pub(crate) fn alpha(&self) -> u32 {
        self.alpha
    }

    pub(crate) fn on_round(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        let round = ctx.round();
        if round == 0 {
            return Status::Running; // vertices are broadcasting
        }
        if round == 1 {
            return self.round1(ctx);
        }
        match Phase::of_round(round) {
            Phase::E1 => self.phase_e1(ctx),
            Phase::E2 => self.phase_e2(ctx),
            Phase::V1 | Phase::V2 => Status::Running, // vertex phases
        }
    }

    /// Iteration 0: find `v* = argmin w(v)/|E(v)|` (exact integer
    /// comparison, ties to the lowest port) and announce it with α(e).
    /// Warm runs additionally aggregate the members' seeded levels into
    /// the pre-halving count `Σ_{u∈e} ℓ(u)` that every member applies to
    /// the initial bid.
    fn round1(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        debug_assert_eq!(ctx.inbox().len(), self.size);
        let mut best: Option<(u64, u64)> = None;
        let mut local_delta = 0u64;
        let mut halvings = 0u32;
        // Inbox is port-sorted, so "first strictly smaller wins" is the
        // lowest-port tie-break.
        for item in ctx.inbox() {
            let (weight, degree) = match (self.warm, item.msg) {
                (false, MwhvcMsg::WeightDeg { weight, degree }) => (weight, degree),
                (
                    true,
                    MwhvcMsg::WeightDegWarm {
                        weight,
                        degree,
                        level,
                    },
                ) => {
                    halvings = halvings.saturating_add(level);
                    (weight, degree)
                }
                (warm, other) => {
                    unreachable!("round 1 inbox wrong for warm={warm}: {other:?}")
                }
            };
            local_delta = local_delta.max(degree);
            match best {
                None => best = Some((weight, degree)),
                Some((bw, bd)) => {
                    if norm_weight_less(weight, degree, bw, bd) {
                        best = Some((weight, degree));
                    }
                }
            }
        }
        let (weight, degree) = best.expect("edges have at least one member");
        self.alpha = self.policy.resolve(
            self.f,
            self.eps,
            u32::try_from(local_delta).unwrap_or(u32::MAX),
            self.global_delta,
        );
        if self.warm {
            ctx.broadcast(MwhvcMsg::MinNormWarm {
                weight,
                degree,
                alpha: self.alpha,
                halvings,
            });
        } else {
            ctx.broadcast(MwhvcMsg::MinNorm {
                weight,
                degree,
                alpha: self.alpha,
            });
        }
        Status::Running
    }

    /// E1: coverage propagation (3b) or halving aggregation (3(d)ii).
    fn phase_e1(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        debug_assert_eq!(
            ctx.inbox().len(),
            self.size,
            "all members of an uncovered edge are alive"
        );
        let mut halvings = 0u32;
        let mut covered = false;
        for item in ctx.inbox() {
            match item.msg {
                MwhvcMsg::Join => covered = true,
                MwhvcMsg::LevelInc { count } => halvings += count,
                other => unreachable!("E1 inbox must be Join/LevelInc, got {other:?}"),
            }
        }
        if covered {
            self.covered = true;
            ctx.broadcast(MwhvcMsg::Covered);
            return Status::Halted;
        }
        ctx.broadcast(MwhvcMsg::Halved { count: halvings });
        Status::Running
    }

    /// E2: unanimous-raise detection (3f). The actual dual increment happens
    /// on the vertex side when `RaiseApplied` arrives.
    fn phase_e2(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        debug_assert_eq!(ctx.inbox().len(), self.size);
        let all_raise = ctx.inbox().iter().all(|item| match item.msg {
            MwhvcMsg::Raise => true,
            MwhvcMsg::Stuck => false,
            other => unreachable!("E2 inbox must be Raise/Stuck, got {other:?}"),
        });
        ctx.broadcast(MwhvcMsg::RaiseApplied { raised: all_raise });
        Status::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_congest::Incoming;

    fn run_round(
        edge: &mut EdgeNode,
        round: u64,
        inbox: Vec<Incoming<MwhvcMsg>>,
    ) -> (Status, Vec<(usize, MwhvcMsg)>) {
        let mut out = Vec::new();
        let mut ctx = Ctx::new(round, 9, edge.size, &inbox, &mut out);
        let status = edge.on_round(&mut ctx);
        (status, out)
    }

    fn weight_deg(port: usize, weight: u64, degree: u64) -> Incoming<MwhvcMsg> {
        Incoming {
            port,
            msg: MwhvcMsg::WeightDeg { weight, degree },
        }
    }

    #[test]
    fn round1_picks_min_normalized_weight() {
        let mut e = EdgeNode::new(3, AlphaPolicy::Fixed(2), 3, 0.5, 100);
        // Normalized: 6/2 = 3, 5/5 = 1, 9/3 = 3 -> v* = port 1.
        let inbox = vec![
            weight_deg(0, 6, 2),
            weight_deg(1, 5, 5),
            weight_deg(2, 9, 3),
        ];
        let (status, out) = run_round(&mut e, 1, inbox);
        assert_eq!(status, Status::Running);
        assert_eq!(out.len(), 3);
        for (_, msg) in &out {
            assert_eq!(
                *msg,
                MwhvcMsg::MinNorm {
                    weight: 5,
                    degree: 5,
                    alpha: 2
                }
            );
        }
    }

    #[test]
    fn round1_tie_breaks_to_lowest_port() {
        let mut e = EdgeNode::new(2, AlphaPolicy::Fixed(2), 2, 0.5, 10);
        // 2/4 == 1/2 exactly; port 0 must win.
        let inbox = vec![weight_deg(0, 2, 4), weight_deg(1, 1, 2)];
        let (_, out) = run_round(&mut e, 1, inbox);
        assert!(matches!(
            out[0].1,
            MwhvcMsg::MinNorm {
                weight: 2,
                degree: 4,
                ..
            }
        ));
    }

    #[test]
    fn round1_local_alpha_uses_local_max_degree() {
        let mut e = EdgeNode::new(2, AlphaPolicy::LocalTheorem9 { gamma: 0.001 }, 1, 1.0, 3);
        let inbox = vec![weight_deg(0, 1, 1 << 20), weight_deg(1, 1, 2)];
        let (_, out) = run_round(&mut e, 1, inbox);
        let MwhvcMsg::MinNorm { alpha, .. } = out[0].1 else {
            panic!("expected MinNorm");
        };
        assert!(alpha > 2, "local delta 2^20 should give a large alpha");
        assert_eq!(e.alpha(), alpha);
    }

    #[test]
    fn e1_join_covers_and_halts() {
        let mut e = EdgeNode::new(2, AlphaPolicy::Fixed(2), 2, 0.5, 10);
        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::Join,
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::LevelInc { count: 1 },
            },
        ];
        let (status, out) = run_round(&mut e, 3, inbox);
        assert_eq!(status, Status::Halted);
        assert!(e.is_covered());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, m)| *m == MwhvcMsg::Covered));
    }

    #[test]
    fn e1_sums_halvings() {
        let mut e = EdgeNode::new(3, AlphaPolicy::Fixed(2), 3, 0.5, 10);
        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::LevelInc { count: 1 },
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::LevelInc { count: 0 },
            },
            Incoming {
                port: 2,
                msg: MwhvcMsg::LevelInc { count: 2 },
            },
        ];
        let (status, out) = run_round(&mut e, 3, inbox);
        assert_eq!(status, Status::Running);
        assert!(out.iter().all(|(_, m)| *m == MwhvcMsg::Halved { count: 3 }));
    }

    #[test]
    fn e2_requires_unanimity() {
        let mut e = EdgeNode::new(2, AlphaPolicy::Fixed(2), 2, 0.5, 10);
        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::Raise,
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::Stuck,
            },
        ];
        let (_, out) = run_round(&mut e, 5, inbox);
        assert!(out
            .iter()
            .all(|(_, m)| *m == MwhvcMsg::RaiseApplied { raised: false }));

        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::Raise,
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::Raise,
            },
        ];
        let (_, out) = run_round(&mut e, 5, inbox);
        assert!(out
            .iter()
            .all(|(_, m)| *m == MwhvcMsg::RaiseApplied { raised: true }));
    }
}
