//! The vertex (server) state machine.
//!
//! A vertex owns the numeric state of the primal-dual computation: its level
//! `ℓ(v)`, the dual sum `Σ_{e∈E(v)} δ(e)`, and a local replica of `bid(e)`
//! and `δ(e)` for every incident edge. Replicas stay consistent across the
//! members of an edge because every update is a deterministic function of
//! broadcast values (see the module docs of [`super`]).

use dcover_congest::{Ctx, Status};

use super::msg::MwhvcMsg;
use super::{
    apply_halvings, apply_raise, initial_bid, pow2_neg, should_level_up, Phase, INIT_ROUNDS,
};
use crate::params::Variant;

/// Final outcome of a vertex.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum VertexOutcome {
    /// Still running.
    Undecided,
    /// Became β-tight and joined the cover C (step 3a).
    InCover,
    /// All incident edges were covered by others; terminated outside C.
    AllCovered,
}

/// Per-vertex program state.
#[derive(Clone, Debug)]
pub(crate) struct VertexNode {
    // ---- immutable local input ----
    weight_int: u64,
    weight: f64,
    degree: usize,
    beta: f64,
    z: u32,
    variant: Variant,
    // ---- per-port replicas (index = port = position in E(v)) ----
    bids: Vec<f64>,
    duals: Vec<f64>,
    alphas: Vec<u32>,
    live: Vec<bool>,
    live_count: usize,
    // ---- scalars ----
    dual_sum: f64,
    level: u32,
    outcome: VertexOutcome,
    /// Warm-started runs seed `duals`/`dual_sum`/`level` from a previous
    /// solve and exchange the warm init messages instead of the cold ones.
    warm: bool,
}

impl VertexNode {
    pub(crate) fn new(weight: u64, degree: usize, beta: f64, z: u32, variant: Variant) -> Self {
        Self {
            weight_int: weight,
            weight: weight as f64,
            degree,
            beta,
            z,
            variant,
            bids: vec![0.0; degree],
            duals: vec![0.0; degree],
            alphas: vec![2; degree],
            live: vec![true; degree],
            live_count: degree,
            dual_sum: 0.0,
            level: 0,
            outcome: VertexOutcome::Undecided,
            warm: false,
        }
    }

    /// A vertex seeded from a previous solve: per-port duals (aligned with
    /// `E(v)` order; new edges at 0) and the level carried over. The
    /// caller (the solver's warm path) has already clamped the duals to a
    /// feasible packing and the level to `≤ z`.
    pub(crate) fn new_warm(
        weight: u64,
        degree: usize,
        beta: f64,
        z: u32,
        variant: Variant,
        level: u32,
        duals: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(duals.len(), degree);
        debug_assert!(level <= z);
        let dual_sum = duals.iter().sum();
        Self {
            weight_int: weight,
            weight: weight as f64,
            degree,
            beta,
            z,
            variant,
            bids: vec![0.0; degree],
            duals,
            alphas: vec![2; degree],
            live: vec![true; degree],
            live_count: degree,
            dual_sum,
            level,
            outcome: VertexOutcome::Undecided,
            warm: true,
        }
    }

    /// Whether this vertex ended in the cover.
    pub(crate) fn in_cover(&self) -> bool {
        self.outcome == VertexOutcome::InCover
    }

    /// The final level `ℓ(v)`.
    pub(crate) fn level(&self) -> u32 {
        self.level
    }

    /// The final per-port duals (aligned with `E(v)` order).
    pub(crate) fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// The final dual sum `Σ_{e∈E(v)} δ(e)`.
    pub(crate) fn dual_sum(&self) -> f64 {
        self.dual_sum
    }

    pub(crate) fn on_round(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        let round = ctx.round();
        if round == 0 {
            if self.degree == 0 {
                // Isolated vertex: nothing to cover, never in C.
                self.outcome = VertexOutcome::AllCovered;
                return Status::Halted;
            }
            if self.warm {
                ctx.broadcast(MwhvcMsg::WeightDegWarm {
                    weight: self.weight_int,
                    degree: self.degree as u64,
                    level: self.level,
                });
            } else {
                ctx.broadcast(MwhvcMsg::WeightDeg {
                    weight: self.weight_int,
                    degree: self.degree as u64,
                });
            }
            return Status::Running;
        }
        if round == 1 {
            // Edges are computing initial bids; nothing to do.
            return Status::Running;
        }
        match Phase::of_round(round) {
            Phase::V1 => self.phase_v1(ctx),
            Phase::V2 => self.phase_v2(ctx),
            Phase::E1 | Phase::E2 => Status::Running, // edge phases; inbox empty
        }
    }

    /// V1: absorb dual increments (or the initial bids at round 2), then the
    /// β-tightness check (3a), then level increments (3d).
    fn phase_v1(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        if ctx.round() == INIT_ROUNDS && self.warm {
            // Warm iteration 0: the duals are already seeded; only the bid
            // replicas need reconstructing, pre-halved by the seeded
            // levels of *all* members (shipped by the edge as `halvings`)
            // so bid growth resumes at the pace the seeded packing
            // implies. Nothing is added to δ here: for surviving edges the
            // seeded value IS the dual, and freshly inserted edges start
            // at δ = 0 and earn their first increment through the regular
            // raise cycle — keeping every replica in exact agreement.
            debug_assert_eq!(ctx.inbox().len(), self.degree);
            for item in ctx.inbox() {
                let MwhvcMsg::MinNormWarm {
                    weight,
                    degree,
                    alpha,
                    halvings,
                } = item.msg
                else {
                    unreachable!("warm round 2 inbox must be MinNormWarm, got {:?}", item.msg);
                };
                self.bids[item.port] = apply_halvings(initial_bid(weight, degree), halvings);
                self.alphas[item.port] = alpha;
            }
        } else if ctx.round() == INIT_ROUNDS {
            // Iteration 0 results: every edge reported its minimum
            // normalized weight; reconstruct bid0 and δ0 locally.
            debug_assert_eq!(ctx.inbox().len(), self.degree);
            for item in ctx.inbox() {
                let MwhvcMsg::MinNorm {
                    weight,
                    degree,
                    alpha,
                } = item.msg
                else {
                    unreachable!("round 2 inbox must be MinNorm, got {:?}", item.msg);
                };
                let bid = initial_bid(weight, degree);
                self.bids[item.port] = bid;
                self.duals[item.port] = bid;
                self.alphas[item.port] = alpha;
                self.dual_sum += bid;
            }
        } else {
            // Step 3f of the previous iteration: learn whether each live
            // edge raised, then add the (possibly raised) bid to δ(e).
            for item in ctx.inbox() {
                let MwhvcMsg::RaiseApplied { raised } = item.msg else {
                    unreachable!("V1 inbox must be RaiseApplied, got {:?}", item.msg);
                };
                let p = item.port;
                debug_assert!(self.live[p]);
                if raised {
                    self.bids[p] = apply_raise(self.bids[p], self.alphas[p]);
                }
                let add = match self.variant {
                    Variant::Standard => self.bids[p],
                    Variant::HalfBid => self.bids[p] / 2.0,
                };
                self.duals[p] += add;
                self.dual_sum += add;
            }
        }

        // Step 3a: β-tightness.
        if self.dual_sum >= (1.0 - self.beta) * self.weight {
            self.outcome = VertexOutcome::InCover;
            self.send_live(ctx, MwhvcMsg::Join);
            return Status::Halted;
        }

        // Step 3d: climb levels while the slack has more than halved.
        let mut increments = 0u32;
        while should_level_up(self.dual_sum, self.weight, self.level) {
            self.level += 1;
            increments += 1;
            debug_assert!(
                self.level <= self.z,
                "level {} exceeded z = {} (Claim 4 violated)",
                self.level,
                self.z
            );
            if self.level > self.z {
                break; // float-slop safety valve; unreachable in practice
            }
        }
        self.send_live(ctx, MwhvcMsg::LevelInc { count: increments });
        Status::Running
    }

    /// V2: prune covered edges (3b/3c), apply halvings, raise/stuck (3e).
    fn phase_v2(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        for item in ctx.inbox() {
            let p = item.port;
            match item.msg {
                MwhvcMsg::Covered => {
                    debug_assert!(self.live[p]);
                    self.live[p] = false;
                    self.live_count -= 1;
                    // δ(e) stays frozen at its last value (paper: δ_i(e) =
                    // δ_{j-1}(e) for covered edges) and keeps contributing
                    // to dual_sum.
                }
                MwhvcMsg::Halved { count } => {
                    debug_assert!(self.live[p]);
                    if count > 0 {
                        self.bids[p] = apply_halvings(self.bids[p], count);
                    }
                }
                other => unreachable!("V2 inbox must be Covered/Halved, got {other:?}"),
            }
        }
        if self.live_count == 0 {
            self.outcome = VertexOutcome::AllCovered;
            return Status::Halted;
        }

        // Step 3e with the local α: a raise is safe iff even the largest
        // multiplier among live edges keeps Claim 1 intact.
        let mut alpha_max = 2u32;
        let mut bid_sum = 0.0;
        for p in 0..self.degree {
            if self.live[p] {
                alpha_max = alpha_max.max(self.alphas[p]);
                bid_sum += self.bids[p];
            }
        }
        let threshold = pow2_neg(self.level + 1) * self.weight / f64::from(alpha_max);
        let msg = if bid_sum <= threshold {
            MwhvcMsg::Raise
        } else {
            MwhvcMsg::Stuck
        };
        self.send_live(ctx, msg);
        Status::Running
    }

    fn send_live(&self, ctx: &mut Ctx<'_, MwhvcMsg>, msg: MwhvcMsg) {
        for p in 0..self.degree {
            if self.live[p] {
                ctx.send(p, msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_congest::Incoming;

    fn ctx_at<'a>(
        round: u64,
        degree: usize,
        inbox: &'a [Incoming<MwhvcMsg>],
        out: &'a mut Vec<(usize, MwhvcMsg)>,
    ) -> Ctx<'a, MwhvcMsg> {
        Ctx::new(round, 0, degree, inbox, out)
    }

    #[test]
    fn isolated_vertex_halts_immediately() {
        let mut v = VertexNode::new(5, 0, 0.25, 2, Variant::Standard);
        let inbox = vec![];
        let mut out = Vec::new();
        let mut ctx = ctx_at(0, 0, &inbox, &mut out);
        assert_eq!(v.on_round(&mut ctx), Status::Halted);
        assert!(!v.in_cover());
    }

    #[test]
    fn round0_broadcasts_weight_and_degree() {
        let mut v = VertexNode::new(7, 3, 0.25, 2, Variant::Standard);
        let inbox = vec![];
        let mut out = Vec::new();
        let mut ctx = ctx_at(0, 3, &inbox, &mut out);
        assert_eq!(v.on_round(&mut ctx), Status::Running);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, m)| matches!(
            m,
            MwhvcMsg::WeightDeg {
                weight: 7,
                degree: 3
            }
        )));
    }

    #[test]
    fn round2_reconstructs_bids_and_checks_tightness() {
        // Degree 1, weight 1; edge reports v* = (1, 1) -> bid0 = 0.5.
        // beta = 1/3: (1-beta)w = 2/3 > 0.5 -> not tight, level stays 0
        // because 0.5 <= w(1 - 0.25) = 0.75? Level loop: while 0.5 >
        // 1·(1−0.5) = 0.5 -> false. So no increments.
        let mut v = VertexNode::new(1, 1, 1.0 / 3.0, 2, Variant::Standard);
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::MinNorm {
                weight: 1,
                degree: 1,
                alpha: 2,
            },
        }];
        let mut out = Vec::new();
        let mut ctx = ctx_at(2, 1, &inbox, &mut out);
        assert_eq!(v.on_round(&mut ctx), Status::Running);
        assert_eq!(out, vec![(0, MwhvcMsg::LevelInc { count: 0 })]);
        assert_eq!(v.dual_sum(), 0.5);
        assert_eq!(v.level(), 0);
    }

    #[test]
    fn tight_vertex_joins_and_halts() {
        // beta = 0.5; degree 1 with bid0 = 0.5·w: dual_sum = 0.5 ≥ (1−β)w =
        // 0.5 -> joins immediately at round 2.
        let mut v = VertexNode::new(1, 1, 0.5, 1, Variant::Standard);
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::MinNorm {
                weight: 1,
                degree: 1,
                alpha: 2,
            },
        }];
        let mut out = Vec::new();
        let mut ctx = ctx_at(2, 1, &inbox, &mut out);
        assert_eq!(v.on_round(&mut ctx), Status::Halted);
        assert!(v.in_cover());
        assert_eq!(out, vec![(0, MwhvcMsg::Join)]);
    }

    #[test]
    fn v2_covered_edges_freeze_duals() {
        let mut v = VertexNode::new(10, 2, 0.25, 3, Variant::Standard);
        // Seed round-2 state manually.
        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::MinNorm {
                    weight: 10,
                    degree: 2,
                    alpha: 2,
                },
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::MinNorm {
                    weight: 10,
                    degree: 2,
                    alpha: 4,
                },
            },
        ];
        let mut out = Vec::new();
        let mut ctx = ctx_at(2, 2, &inbox, &mut out);
        v.on_round(&mut ctx);
        let dual_before = v.dual_sum();

        // V2: edge on port 0 covered, port 1 halved twice.
        let inbox = vec![
            Incoming {
                port: 0,
                msg: MwhvcMsg::Covered,
            },
            Incoming {
                port: 1,
                msg: MwhvcMsg::Halved { count: 2 },
            },
        ];
        let mut out = Vec::new();
        let mut ctx = ctx_at(4, 2, &inbox, &mut out);
        assert_eq!(v.on_round(&mut ctx), Status::Running);
        assert_eq!(v.dual_sum(), dual_before, "duals frozen, not removed");
        assert_eq!(v.bids[1], 2.5 * 0.25, "bid halved twice");
        // Only the live port gets the raise/stuck message.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 1);
        // alpha_max over live ports = 4; threshold = 0.5^{1}·10/4 = 1.25;
        // bid_sum = 0.625 ≤ 1.25 -> Raise.
        assert_eq!(out[0].1, MwhvcMsg::Raise);
    }

    #[test]
    fn v2_all_covered_halts_outside_cover() {
        let mut v = VertexNode::new(10, 1, 0.25, 3, Variant::Standard);
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::MinNorm {
                weight: 10,
                degree: 1,
                alpha: 2,
            },
        }];
        let mut out = Vec::new();
        v.on_round(&mut ctx_at(2, 1, &inbox, &mut out));
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::Covered,
        }];
        let mut out = Vec::new();
        assert_eq!(
            v.on_round(&mut ctx_at(4, 1, &inbox, &mut out)),
            Status::Halted
        );
        assert!(!v.in_cover());
        assert!(out.is_empty());
    }

    #[test]
    fn halfbid_adds_half() {
        let mut v = VertexNode::new(100, 1, 0.01, 9, Variant::HalfBid);
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::MinNorm {
                weight: 100,
                degree: 1,
                alpha: 2,
            },
        }];
        let mut out = Vec::new();
        v.on_round(&mut ctx_at(2, 1, &inbox, &mut out));
        assert_eq!(v.dual_sum(), 50.0); // δ0 = bid0 (full, per iteration 0)
        let inbox = vec![Incoming {
            port: 0,
            msg: MwhvcMsg::RaiseApplied { raised: false },
        }];
        let mut out = Vec::new();
        v.on_round(&mut ctx_at(6, 1, &inbox, &mut out));
        // HalfBid: δ += bid/2 = 25.
        assert_eq!(v.dual_sum(), 75.0);
    }
}
