//! The combined node program and network construction.
//!
//! The communication network is bipartite: hypergraph vertices are *server*
//! nodes `0..n`, hyperedges are *client* nodes `n..n+m`
//! ([`Topology::bipartite_incidence`]). [`MwhvcNode`] wraps the two state
//! machines behind one [`Process`] implementation so a single simulator runs
//! both sides.

use dcover_congest::{Ctx, Process, Status, Topology};
use dcover_hypergraph::Hypergraph;

use super::edge::EdgeNode;
use super::msg::MwhvcMsg;
use super::vertex::VertexNode;
use crate::params::{beta, z_levels, MwhvcConfig};

/// Which side of the bipartite communication network a node is on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NodeRole {
    /// A hypergraph vertex (server).
    Vertex,
    /// A hyperedge (client).
    Edge,
}

/// One node of the MWHVC protocol (either a vertex or a hyperedge program).
///
/// Most users should call [`MwhvcSolver`](crate::MwhvcSolver) instead; this
/// type is public so examples and experiments can drive the simulator
/// round-by-round (e.g. to inspect per-round bandwidth).
#[derive(Clone, Debug)]
pub struct MwhvcNode(Inner);

#[derive(Clone, Debug)]
enum Inner {
    Vertex(VertexNode),
    Edge(EdgeNode),
}

impl MwhvcNode {
    /// The node's role.
    #[must_use]
    pub fn role(&self) -> NodeRole {
        match self.0 {
            Inner::Vertex(_) => NodeRole::Vertex,
            Inner::Edge(_) => NodeRole::Edge,
        }
    }

    /// For vertex nodes: whether the vertex ended in the cover.
    #[must_use]
    pub fn in_cover(&self) -> Option<bool> {
        match &self.0 {
            Inner::Vertex(v) => Some(v.in_cover()),
            Inner::Edge(_) => None,
        }
    }

    /// For vertex nodes: the final level `ℓ(v)`.
    #[must_use]
    pub fn level(&self) -> Option<u32> {
        match &self.0 {
            Inner::Vertex(v) => Some(v.level()),
            Inner::Edge(_) => None,
        }
    }

    /// For vertex nodes: the final dual sum `Σ_{e∈E(v)} δ(e)`.
    #[must_use]
    pub fn dual_sum(&self) -> Option<f64> {
        match &self.0 {
            Inner::Vertex(v) => Some(v.dual_sum()),
            Inner::Edge(_) => None,
        }
    }

    /// For vertex nodes: the per-port duals, aligned with
    /// [`Hypergraph::incident_edges`] order.
    #[must_use]
    pub fn port_duals(&self) -> Option<&[f64]> {
        match &self.0 {
            Inner::Vertex(v) => Some(v.duals()),
            Inner::Edge(_) => None,
        }
    }

    /// For edge nodes: the resolved α(e) (0 before round 1).
    #[must_use]
    pub fn edge_alpha(&self) -> Option<u32> {
        match &self.0 {
            Inner::Vertex(_) => None,
            Inner::Edge(e) => Some(e.alpha()),
        }
    }

    /// For edge nodes: whether the edge terminated covered.
    #[must_use]
    pub fn edge_covered(&self) -> Option<bool> {
        match &self.0 {
            Inner::Vertex(_) => None,
            Inner::Edge(e) => Some(e.is_covered()),
        }
    }
}

impl Process for MwhvcNode {
    type Msg = MwhvcMsg;

    fn on_round(&mut self, ctx: &mut Ctx<'_, MwhvcMsg>) -> Status {
        match &mut self.0 {
            Inner::Vertex(v) => v.on_round(ctx),
            Inner::Edge(e) => e.on_round(ctx),
        }
    }
}

/// Builds the communication network and the node programs for an instance.
///
/// Returns the bipartite topology (vertices `0..n`, edges `n..n+m`) and one
/// [`MwhvcNode`] per network node, ready to hand to a
/// [`Simulator`](dcover_congest::Simulator).
///
/// # Panics
///
/// Panics if the hypergraph has edges but rank 0 (impossible by
/// construction).
#[must_use]
pub fn build_network(g: &Hypergraph, config: &MwhvcConfig) -> (Topology, Vec<MwhvcNode>) {
    let topo = Topology::bipartite_incidence(g);
    let f = g.rank().max(1);
    let eps = config.epsilon();
    let b = beta(f, eps);
    let z = z_levels(f, eps);
    let mut nodes = Vec::with_capacity(g.n() + g.m());
    for v in g.vertices() {
        nodes.push(MwhvcNode(Inner::Vertex(VertexNode::new(
            g.weight(v),
            g.degree(v),
            b,
            z,
            config.variant(),
        ))));
    }
    for e in g.edges() {
        nodes.push(MwhvcNode(Inner::Edge(EdgeNode::new(
            g.edge_size(e),
            config.alpha(),
            f,
            eps,
            g.max_degree(),
        ))));
    }
    (topo, nodes)
}

/// Like [`build_network`], but seeds every vertex with a previous solve's
/// dual packing and level (see
/// [`MwhvcSolver::solve_warm`](crate::MwhvcSolver::solve_warm)).
///
/// `duals` holds one seeded dual per hyperedge of `g` (0 for edges with no
/// predecessor) and `levels` one level per vertex; the caller must already
/// have clamped the duals to a feasible packing and the levels to `≤ z` —
/// this function only distributes the per-edge values to the members'
/// port-aligned replicas.
///
/// # Panics
///
/// Panics if `duals`/`levels` do not match the instance's edge/vertex
/// counts (the solver validates shapes before calling).
#[must_use]
pub fn build_network_warm(
    g: &Hypergraph,
    config: &MwhvcConfig,
    duals: &[f64],
    levels: &[u32],
) -> (Topology, Vec<MwhvcNode>) {
    assert_eq!(duals.len(), g.m(), "one seeded dual per hyperedge");
    assert_eq!(levels.len(), g.n(), "one seeded level per vertex");
    let topo = Topology::bipartite_incidence(g);
    let f = g.rank().max(1);
    let eps = config.epsilon();
    let b = beta(f, eps);
    let z = z_levels(f, eps);
    let mut nodes = Vec::with_capacity(g.n() + g.m());
    for v in g.vertices() {
        let port_duals: Vec<f64> = g
            .incident_edges(v)
            .iter()
            .map(|&e| duals[e.index()])
            .collect();
        nodes.push(MwhvcNode(Inner::Vertex(VertexNode::new_warm(
            g.weight(v),
            g.degree(v),
            b,
            z,
            config.variant(),
            levels[v.index()],
            port_duals,
        ))));
    }
    for e in g.edges() {
        nodes.push(MwhvcNode(Inner::Edge(EdgeNode::new_warm(
            g.edge_size(e),
            config.alpha(),
            f,
            eps,
            g.max_degree(),
        ))));
    }
    (topo, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_hypergraph::from_edge_lists;

    #[test]
    fn build_network_shapes() {
        let g = from_edge_lists(4, &[&[0, 1], &[1, 2, 3]]).unwrap();
        let cfg = MwhvcConfig::new(0.5).unwrap();
        let (topo, nodes) = build_network(&g, &cfg);
        assert_eq!(topo.len(), 6);
        assert_eq!(nodes.len(), 6);
        assert_eq!(nodes[0].role(), NodeRole::Vertex);
        assert_eq!(nodes[4].role(), NodeRole::Edge);
        assert_eq!(nodes[0].in_cover(), Some(false));
        assert_eq!(nodes[4].in_cover(), None);
        assert_eq!(nodes[4].edge_covered(), Some(false));
        assert_eq!(nodes[0].level(), Some(0));
    }
}
