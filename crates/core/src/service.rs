//! The asynchronous solve service: a submission queue with backpressure
//! in front of one persistent worker pool.
//!
//! [`SolveSession::solve_batch`](crate::SolveSession::solve_batch) serves
//! *pre-assembled* batches; a real server receives instances **as they
//! arrive**. [`SolveService`] is that front door:
//!
//! * [`submit`](SolveService::submit) hands in one shared read-only
//!   instance (`Arc<Hypergraph>` — **never deep-copied**, see below) and
//!   returns a [`Ticket`] immediately; the solve runs on whichever pool
//!   worker frees up first. When the bounded queue is full, `submit`
//!   blocks until a slot opens.
//! * [`try_submit`](SolveService::try_submit) never blocks: a full queue
//!   is reported as [`SubmitError::Backpressure`], so an ingestion loop
//!   can shed or defer load instead of stalling.
//! * [`Ticket::wait`] / [`Ticket::try_wait`] redeem a submission for its
//!   [`CoverResult`], which is **bit-identical** to what a standalone
//!   [`MwhvcSolver::solve`](crate::MwhvcSolver::solve) returns for the
//!   same instance and ε.
//! * [`submit_delta`](SolveService::submit_delta) hands in a **revision**
//!   of an earlier submission (an
//!   [`InstanceDelta`](dcover_hypergraph::InstanceDelta) referencing its
//!   [`Ticket::seq`]): the service resolves the cached predecessor, applies
//!   the delta, and **warm-starts** the re-solve from the predecessor's
//!   dual packing ([`MwhvcSolver::solve_warm`]) instead of solving from
//!   scratch.
//! * [`shutdown`](SolveService::shutdown) closes the queue (subsequent
//!   submissions fail with [`SubmitError::ShutDown`]), **drains** every
//!   queued and in-flight solve, and joins the workers — every ticket
//!   issued before the shutdown still resolves.
//!
//! # Request classes, deadlines, and cancellation
//!
//! The submission queue is a small multi-class scheduler, not a plain
//! FIFO: [`submit_with`](SolveService::submit_with) /
//! [`try_submit_with`](SolveService::try_submit_with) /
//! [`submit_delta_with`](SolveService::submit_delta_with) take
//! [`SubmitOptions`] carrying a [`RequestClass`](crate::RequestClass)
//! (`Interactive` submissions dequeue before every queued `Bulk` one,
//! FIFO within a class; chunk-parallel round jobs keep absolute priority)
//! and an optional **full-lifecycle deadline**: a submission still
//! queued when its deadline passes resolves its ticket with the typed
//! [`SolveError::Expired`] instead of occupying a worker, and a solve
//! already **running** when it passes stops cooperatively at its next
//! round boundary and resolves the same way. [`Ticket::cancel`] abandons
//! a submission with identical mechanics ([`SolveError::Cancelled`]).
//! Every ticket still resolves exactly once; a cancel that races
//! completion simply loses and the ticket resolves with the finished
//! result. The plain `submit`/`try_submit`/`submit_delta` enqueue
//! bulk-class work without a deadline — exactly the pre-class FIFO
//! behaviour.
//!
//! # Overload protection
//!
//! Two opt-in knobs keep the service healthy under sustained pressure:
//!
//! * **Bulk aging** ([`with_bulk_max_wait`](SolveService::with_bulk_max_wait)):
//!   a queued bulk submission that has waited past the bound is dequeued
//!   ahead of younger interactive work, so a flood of interactive
//!   traffic cannot starve bulk forever.
//! * **SLO-driven shedding** ([`with_shed_target`](SolveService::with_shed_target)):
//!   while the interactive queue-wait signal — the rolling dequeue p99,
//!   or the age of the oldest still-queued interactive submission when
//!   dequeues stall — is above the target, new bulk submissions are
//!   refused with the typed [`SubmitError::Overloaded`] — load
//!   management at the door, keeping interactive latency bounded
//!   instead of letting the backlog grow.
//!
//! # Observability
//!
//! [`SolveService::metrics`] returns a [`ServiceMetrics`] snapshot:
//! per-class submitted/completed/expired/rejected counters, per-class
//! queue-wait and solve-time fixed-bucket latency histograms
//! ([`LatencyHistogram`](crate::LatencyHistogram)), the queue-depth
//! high-water mark, and total worker busy time. Recording costs a few
//! relaxed atomic adds per solve — zero allocation on the hot path — and
//! survives pool rebuilds and [`shutdown`](SolveService::shutdown).
//! Per-ticket timings come from [`Ticket::wait_timed`] /
//! [`Ticket::try_wait_timed`] as [`TaskTiming`] values.
//!
//! # Zero-copy instances
//!
//! The service threads the `Arc<Hypergraph>` through to the solver layer
//! untouched: the queue stores the `Arc` handle, the worker borrows
//! `&Hypergraph` out of it for the solve, and no code path copies the
//! underlying instance data (the delta result cache retains the handle,
//! not a copy). `dcover_hypergraph::clone_count()` observes payload
//! copies process-wide, and `tests/zero_copy.rs` pins this guarantee.
//!
//! # Error isolation
//!
//! A bad instance (oversized weights, tightened limits) resolves its own
//! ticket with an `Err` and nothing else; even a *panicking* solve task is
//! confined to its ticket ([`SolveError::Panicked`]) — the pool worker
//! survives and every other submission proceeds.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dcover_core::SolveService;
//! use dcover_hypergraph::from_weighted_edge_lists;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = SolveService::with_epsilon(0.5, 2)?;
//! let g = Arc::new(from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]])?);
//! // Submit as requests arrive; redeem tickets whenever convenient.
//! let a = service.submit(Arc::clone(&g), 0.5)?;
//! let b = service.submit(Arc::clone(&g), 1.0)?;
//! assert_eq!(a.wait()?.weight, 1);
//! assert_eq!(b.wait()?.weight, 1);
//! service.shutdown();
//! assert!(service.submit(g, 0.5).is_err());
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use dcover_congest::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dcover_congest::sync::Mutex;

use dcover_congest::{
    CancelToken, ClassMetrics, EngineArena, Interrupt, InterruptReason, QueuePolicy, SchedMetrics,
    SimError, SimPool, TaskClass, TaskError, TaskOptions, TaskQueue, TaskTicket, TaskTiming,
    TrySubmitError,
};
use dcover_hypergraph::{Hypergraph, InstanceDelta};

use crate::error::SolveError;
use crate::params::MwhvcConfig;
use crate::protocol::MwhvcNode;
use crate::solver::{CoverResult, MwhvcSolver};
use crate::warm::WarmState;

/// Default number of completed solves the service retains for
/// [`submit_delta`](SolveService::submit_delta) to warm-start against.
const DEFAULT_RESULT_CACHE: usize = 256;

/// Why a submission was refused at the service door. (Problems *inside*
/// the solve — bad weights, limit violations — are not submission errors;
/// they resolve the ticket with a [`SolveError`] instead.)
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded submission queue is at capacity
    /// ([`try_submit`](SolveService::try_submit) only — the blocking
    /// [`submit`](SolveService::submit) waits instead). Retry later, shed
    /// the request, or fall back to blocking submission.
    Backpressure {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service has been [shut down](SolveService::shutdown); no new
    /// work is accepted.
    ShutDown,
    /// The submission was **shed** at admission: a shed target is
    /// configured ([`SolveService::with_shed_target`]) and the
    /// interactive queue-wait signal — the rolling dequeue p99, or the
    /// age of the oldest still-queued interactive submission when
    /// dequeues stall — is above it, so new bulk-class work is refused
    /// to protect interactive latency. Load management, not a failure —
    /// back off and resubmit when the service catches up. Interactive
    /// submissions are never shed.
    Overloaded {
        /// The interactive queue-wait signal value that tripped the
        /// shed (whichever of the two views was larger).
        interactive_wait_p99: Duration,
    },
    /// The request itself is invalid (e.g. ε outside `(0, 1]`); nothing
    /// was enqueued.
    Invalid(SolveError),
    /// A [`submit_delta`](SolveService::submit_delta) referenced a base
    /// revision the service does not hold: the sequence id was never
    /// issued, its solve failed or has not completed yet, or its entry
    /// was evicted from the bounded result cache.
    UnknownBase {
        /// The sequence id that could not be resolved.
        seq: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { capacity } => {
                write!(f, "submission queue is full ({capacity} waiting)")
            }
            SubmitError::ShutDown => write!(f, "solve service has been shut down"),
            SubmitError::Overloaded {
                interactive_wait_p99,
            } => write!(
                f,
                "service is overloaded (interactive queue-wait signal {:.3} ms over target); bulk submission shed",
                interactive_wait_p99.as_secs_f64() * 1e3
            ),
            SubmitError::Invalid(e) => write!(f, "invalid submission: {e}"),
            SubmitError::UnknownBase { seq } => write!(
                f,
                "no cached result for base revision {seq} (not completed, failed, or evicted)"
            ),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// Scheduling options for one submission
/// ([`SolveService::submit_with`] and friends).
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use dcover_core::SubmitOptions;
///
/// let opts = SubmitOptions::interactive().with_deadline(Duration::from_millis(50));
/// assert_eq!(opts.deadline, Some(Duration::from_millis(50)));
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// The request class ([`RequestClass::Bulk`](crate::RequestClass) by
    /// default — what the plain `submit`/`try_submit` use).
    pub class: TaskClass,
    /// If set, the submission's **full-lifecycle** deadline, measured
    /// from the submit call. A solve still queued past it is discarded
    /// without running; a solve a worker already started stops
    /// cooperatively at its next round boundary. Either way the ticket
    /// resolves as the typed [`SolveError::Expired`].
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Interactive-class options without a deadline.
    #[must_use]
    pub fn interactive() -> Self {
        SubmitOptions {
            class: TaskClass::Interactive,
            ..SubmitOptions::default()
        }
    }

    /// Bulk-class options without a deadline (the default).
    #[must_use]
    pub fn bulk() -> Self {
        SubmitOptions::default()
    }

    /// Returns the options with the queue deadline set.
    #[must_use]
    pub fn with_deadline(mut self, from_submit: Duration) -> Self {
        self.deadline = Some(from_submit);
        self
    }

    /// The submission's full scheduling envelope, anchored at "now" (the
    /// submit call): the pool-level [`TaskOptions`] (queue class, absolute
    /// deadline, cancel token) plus the in-run [`Interrupt`] carrying the
    /// **same** token and deadline, so a cancel or an expiry is honoured
    /// both while queued (discarded at dequeue) and mid-run (stopped at
    /// the next round boundary).
    fn envelope(self) -> SubmissionEnvelope {
        let submitted = Instant::now();
        let token = CancelToken::new();
        let deadline = self.deadline.map(|d| submitted + d);
        let mut interrupt = Interrupt::new().with_token(token.clone());
        if let Some(d) = deadline {
            interrupt = interrupt.with_deadline(d);
        }
        SubmissionEnvelope {
            task: TaskOptions {
                class: self.class,
                deadline,
                cancel: Some(token.clone()),
            },
            interrupt,
            token,
            submitted,
        }
    }
}

/// Everything one submission needs to be schedulable, cancellable, and
/// deadline-bounded across its whole lifecycle (see
/// [`SubmitOptions::envelope`]).
struct SubmissionEnvelope {
    /// Pool-level scheduling options (class, absolute deadline, token).
    task: TaskOptions,
    /// The in-run interrupt checked once per round by the simulator.
    interrupt: Interrupt,
    /// The shared cancel token, kept by the [`Ticket`].
    token: CancelToken,
    /// When the submit call happened (anchors `Expired::waited`).
    submitted: Instant,
}

/// A point-in-time snapshot of the service's scheduling metrics, from
/// [`SolveService::metrics`].
///
/// Per-class [`ClassMetrics`] carry
/// submitted/completed/expired/cancelled/shed/rejected counters plus
/// queue-wait and solve-time latency histograms (the `run_time` histogram
/// of a solve task **is** its solve time). Counters accumulate across
/// pool rebuilds and survive [`shutdown`](SolveService::shutdown).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Interactive-class counters and histograms.
    pub interactive: ClassMetrics,
    /// Bulk-class counters and histograms.
    pub bulk: ClassMetrics,
    /// Highest number of submissions ever waiting in the queue at once
    /// (both classes combined).
    pub queue_depth_high_water: u64,
    /// Total time workers spent running solve tasks (chunk-parallel round
    /// jobs are not clocked).
    pub worker_busy: Duration,
    /// Rolling p99 of recent interactive queue waits — the SLO signal
    /// admission control sheds on
    /// ([`SolveService::with_shed_target`]). `None` until an
    /// interactive submission has been dequeued.
    pub interactive_wait_p99: Option<Duration>,
}

impl ServiceMetrics {
    /// The snapshot for one request class.
    #[must_use]
    pub fn class(&self, class: TaskClass) -> &ClassMetrics {
        match class {
            TaskClass::Interactive => &self.interactive,
            TaskClass::Bulk => &self.bulk,
        }
    }
}

/// A pending solve: redeem with [`wait`](Ticket::wait) (blocking) or
/// [`try_wait`](Ticket::try_wait) (polling); the `_timed` variants
/// additionally report the per-ticket queue-wait and solve time. Tickets
/// outlive the service — shutdown drains the queue, so every issued
/// ticket resolves.
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    inner: TaskTicket<Result<CoverResult, SolveError>>,
    /// Shared with the queued task and the in-run interrupt; see
    /// [`cancel`](Self::cancel).
    cancel: CancelToken,
}

impl Ticket {
    /// The submission's sequence id: unique per service, 0-based, and
    /// monotone in submission order *as observed by each submitting
    /// thread* — which for a single-threaded ingestion loop (the `dcover
    /// serve` shape) is exactly arrival order, letting a caller that
    /// redeems tickets in completion order re-associate results with
    /// requests. This id is also the handle
    /// [`submit_delta`](SolveService::submit_delta) resolves a revision's
    /// predecessor by. When several threads submit concurrently, ids stay
    /// unique but the interleaving between threads is unspecified. The id
    /// is drawn from an atomic counter *before* the enqueue (the solve
    /// task must know it to register its result for warm-starting), so a
    /// refused non-blocking submission leaves a gap in the sequence.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether the solve has finished (a `wait` would not block).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Abandons the submission **cooperatively**: a solve still queued is
    /// discarded without running; a solve a worker already started stops
    /// at its next round boundary. Either way the ticket still resolves
    /// exactly once — with [`SolveError::Cancelled`], or with the normal
    /// outcome if the solve finished before the cancel landed (the race
    /// is benign and the result is valid). Idempotent; never blocks.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the solve finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Whatever [`MwhvcSolver::solve`] would return for this instance,
    /// [`SolveError::Panicked`] if the solve task panicked on its worker,
    /// [`SolveError::Expired`] if the submission's deadline passed
    /// (queued or mid-run), or [`SolveError::Cancelled`] if
    /// [`cancel`](Self::cancel) landed before the solve finished.
    pub fn wait(self) -> Result<CoverResult, SolveError> {
        self.wait_timed().0
    }

    /// Like [`wait`](Self::wait), additionally reporting the ticket's
    /// [`TaskTiming`]: `queue` is the time spent waiting in the
    /// submission queue, `run` the solve time on the worker (zero for an
    /// expired ticket).
    pub fn wait_timed(self) -> (Result<CoverResult, SolveError>, TaskTiming) {
        let (result, timing) = self.inner.wait_timed();
        (flatten(result), timing)
    }

    /// Non-blocking redemption: `Ok(result)` if the solve has finished,
    /// `Err(self)` (the ticket, still valid) if it is still queued or
    /// running.
    #[allow(clippy::missing_errors_doc)] // Err is "not ready", not a failure
    pub fn try_wait(self) -> Result<Result<CoverResult, SolveError>, Ticket> {
        self.try_wait_timed().map(|(result, _)| result)
    }

    /// Like [`try_wait`](Self::try_wait), additionally reporting the
    /// ticket's [`TaskTiming`] on completion.
    #[allow(clippy::missing_errors_doc)] // Err is "not ready", not a failure
    pub fn try_wait_timed(self) -> Result<(Result<CoverResult, SolveError>, TaskTiming), Ticket> {
        let seq = self.seq;
        let cancel = self.cancel.clone();
        match self.inner.try_wait_timed() {
            Ok((result, timing)) => Ok((flatten(result), timing)),
            Err(inner) => Err(Ticket { seq, inner, cancel }),
        }
    }
}

/// Collapses the pool-level task outcome into the service's error type.
fn flatten(
    result: Result<Result<CoverResult, SolveError>, TaskError>,
) -> Result<CoverResult, SolveError> {
    match result {
        Ok(inner) => inner,
        Err(TaskError::Panicked(payload)) => Err(SolveError::Panicked {
            message: panic_message(payload.as_ref()),
        }),
        Err(TaskError::Expired { waited }) => Err(SolveError::Expired { waited }),
        Err(TaskError::Cancelled { .. }) => Err(SolveError::Cancelled),
    }
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// One completed solve retained so later deltas can warm-start from it.
#[derive(Clone, Debug)]
struct CacheEntry {
    graph: Arc<Hypergraph>,
    result: Arc<CoverResult>,
    epsilon: f64,
}

/// Bounded seq-keyed store of completed solves, evicting the
/// oldest-inserted entry at capacity. Workers insert on completion;
/// [`SolveService::submit_delta`] resolves predecessors out of it.
/// A `BTreeMap` rather than a hash map: eviction order comes from the
/// explicit `order` deque either way, but the determinism lint bans hash
/// collections in result-producing crates outright — deterministic
/// iteration is then a structural property, not a promise that nobody
/// ever iterates `map`.
#[derive(Debug)]
struct ResultCache {
    capacity: usize,
    map: BTreeMap<u64, CacheEntry>,
    order: VecDeque<u64>,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn insert(&mut self, seq: u64, entry: CacheEntry) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(seq, entry).is_none() {
            self.order.push_back(seq);
            while self.map.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, seq: u64) -> Option<CacheEntry> {
        self.map.get(&seq).cloned()
    }

    /// Rebounds the cache, evicting oldest-inserted entries down to the
    /// new capacity (0 clears it entirely). Merely reassigning `capacity`
    /// would leave already-inserted entries resident and resolvable past
    /// the new bound.
    fn resize(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.map.clear();
            self.order.clear();
            return;
        }
        while self.map.len() > capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// An asynchronous MWHVC solve service: one persistent worker pool behind
/// a bounded submission queue. See the module docs for the serving model.
#[derive(Debug)]
pub struct SolveService {
    base: MwhvcConfig,
    threads: usize,
    queue_capacity: usize,
    /// The pool; `None` after [`shutdown`](Self::shutdown), transiently
    /// while a [`SolveSession`](crate::SolveSession) borrows it for a
    /// chunk-parallel solve, or after a poisoned solve destroyed it (a
    /// node-program panic unwinds through the borrowed pool). Submission
    /// handles are derived from the *current* pool per call — see
    /// [`current_queue`](Self::current_queue) — so the service revives
    /// itself after a poisoning instead of going permanently stale.
    pool: Mutex<Option<SimPool<MwhvcNode>>>,
    /// Next sequence id.
    seq: AtomicU64,
    /// Cleared by [`shutdown`](Self::shutdown): refuse new submissions.
    open: AtomicBool,
    /// Completed solves retained for delta warm-starts, keyed by seq.
    /// Shared with the in-flight solve tasks (they insert on success).
    cache: Arc<Mutex<ResultCache>>,
    /// Scheduler metrics, shared with every pool this service builds (the
    /// initial one, revivals, and take_pool rebuilds) so counters
    /// accumulate across pool lifetimes.
    metrics: Arc<SchedMetrics>,
    /// Queue policy handed to every pool this service builds (bulk
    /// anti-starvation aging; see [`with_bulk_max_wait`](Self::with_bulk_max_wait)).
    policy: QueuePolicy,
    /// SLO-driven admission control: when set, bulk submissions are shed
    /// with [`SubmitError::Overloaded`] while the interactive queue-wait
    /// signal (rolling dequeue p99, or the oldest queued interactive
    /// submission's age) is above this target.
    shed_target: Option<Duration>,
    /// Test-only fault-injection seam: runs on the worker after the task
    /// was dequeued, immediately before the solve starts — used to pin
    /// mid-run cancel/expiry states deterministically.
    #[cfg(test)]
    pre_solve: Mutex<PreSolveHook>,
}

/// Test-only fault-injection hook storage (newtype so the service can
/// keep deriving `Debug`).
#[cfg(test)]
#[derive(Clone, Default)]
struct PreSolveHook(Option<Arc<dyn Fn() + Send + Sync>>);

#[cfg(test)]
impl std::fmt::Debug for PreSolveHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("PreSolveHook")
            .field(&self.0.as_ref().map(|_| "..."))
            .finish()
    }
}

impl SolveService {
    /// Starts a service with `threads` persistent workers and the default
    /// submission-queue capacity of `4 × threads` waiting instances.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(config: MwhvcConfig, threads: usize) -> Self {
        Self::with_queue_capacity(config, threads, 4 * threads.max(1))
    }

    /// Starts a service whose bounded queue holds at most `capacity`
    /// **waiting** instances (instances a worker has started solving no
    /// longer count). A full queue blocks [`submit`](Self::submit) and
    /// makes [`try_submit`](Self::try_submit) report
    /// [`SubmitError::Backpressure`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `capacity == 0`.
    #[must_use]
    pub fn with_queue_capacity(config: MwhvcConfig, threads: usize, capacity: usize) -> Self {
        // invariant: documented construction-time precondition (see
        // `# Panics`) on a caller-supplied thread count — never reached
        // from queue or solve state. (capacity == 0 panics one frame
        // down, in `SimPool::with_policy`, with the same justification.)
        assert!(threads > 0, "need at least one worker thread");
        let metrics = Arc::new(SchedMetrics::new());
        let service = Self {
            base: config,
            threads,
            queue_capacity: capacity,
            pool: Mutex::new(None),
            seq: AtomicU64::new(0),
            open: AtomicBool::new(true),
            cache: Arc::new(Mutex::new(ResultCache::new(DEFAULT_RESULT_CACHE))),
            metrics,
            policy: QueuePolicy::default(),
            shed_target: None,
            #[cfg(test)]
            pre_solve: Mutex::new(PreSolveHook::default()),
        };
        // invariant: the service was constructed in the statement above
        // and has never been shared — no other thread can hold (let
        // alone poison) its pool mutex.
        *service.pool.lock().expect("pool mutex") = Some(service.build_pool());
        service
    }

    /// Resizes the result cache backing
    /// [`submit_delta`](Self::submit_delta) (default:
    /// 256 completed solves; 0 disables retention entirely, making every
    /// delta submission fail with [`SubmitError::UnknownBase`]).
    /// Shrinking below the current population evicts the oldest-inserted
    /// entries down to the new bound, and 0 clears every retained entry.
    /// Consuming builder style — usually called right after construction,
    /// but safe at any point.
    #[must_use]
    pub fn with_result_cache(self, capacity: usize) -> Self {
        // A poisoned cache mutex (a worker panicked mid-record) must not
        // turn a resize into a second panic: the cache's own state is
        // a plain map plus its insertion-order queue, coherent after any
        // interrupted insert, so recover the guard and resize anyway.
        self.cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .resize(capacity);
        self
    }

    /// Enables bulk **anti-starvation aging**: a queued bulk submission
    /// that has waited at least `bound` is dequeued ahead of younger
    /// interactive work (strict class priority otherwise — the default,
    /// equivalent to no bound). Consuming builder style — call before
    /// submitting; the bound applies to every pool the service builds
    /// from here on (including revivals), and the current idle pool is
    /// rebuilt on the spot.
    #[must_use]
    pub fn with_bulk_max_wait(mut self, bound: Duration) -> Self {
        self.policy = self.policy.with_bulk_max_wait(bound);
        let rebuilt = self.build_pool();
        // Recover a poisoned slot rather than panic: the slot is a plain
        // `Option` (coherent after any unwind) and it is being
        // overwritten wholesale anyway.
        *self.pool.lock().unwrap_or_else(PoisonError::into_inner) = Some(rebuilt);
        self
    }

    /// Enables **SLO-driven admission control**: while the interactive
    /// queue-wait signal exceeds `target`, new bulk submissions are
    /// refused with the typed [`SubmitError::Overloaded`] (and counted
    /// as `shed` in [`ServiceMetrics`]) instead of deepening the
    /// backlog. Interactive submissions are never shed.
    ///
    /// The signal is the larger of two views of the same quantity: the
    /// rolling dequeue-side p99
    /// ([`ServiceMetrics::interactive_wait_p99`]) and the age of the
    /// oldest **still-queued** interactive submission. The second,
    /// leading view matters under severe overload: dequeue-side
    /// percentiles only update when interactive work actually leaves
    /// the queue, which is exactly what stops happening while it is
    /// starved behind an aged bulk backlog. Consuming builder style.
    #[must_use]
    pub fn with_shed_target(mut self, target: Duration) -> Self {
        self.shed_target = Some(target);
        self
    }

    /// Starts a service with the given base ε and default settings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_epsilon(epsilon: f64, threads: usize) -> Result<Self, SolveError> {
        Ok(Self::new(MwhvcConfig::new(epsilon)?, threads))
    }

    /// The service's base configuration (per-submission ε overrides it;
    /// every other setting — α policy, variant, budget, trace, round
    /// limit — is inherited by every solve).
    #[must_use]
    pub fn config(&self) -> &MwhvcConfig {
        &self.base
    }

    /// Number of persistent worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The submission queue's capacity (waiting instances).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Number of submissions currently waiting in the queue (excludes
    /// solves a worker has already started; 0 after shutdown).
    #[must_use]
    pub fn queued(&self) -> usize {
        // Observability must not amplify a failure: a poisoned pool
        // mutex reads as an empty queue instead of a second panic.
        self.pool
            .lock()
            .map(|slot| slot.as_ref().map_or(0, |pool| pool.queue().queued()))
            .unwrap_or(0)
    }

    /// Whether the service still accepts submissions.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    /// A point-in-time snapshot of the service's scheduling metrics:
    /// per-class counters and queue-wait/solve-time latency histograms,
    /// the queue-depth high-water mark, and total worker busy time.
    /// Counters accumulate for the lifetime of the service (across pool
    /// revivals) and remain readable after
    /// [`shutdown`](Self::shutdown).
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            interactive: self.metrics.class(TaskClass::Interactive),
            bulk: self.metrics.class(TaskClass::Bulk),
            queue_depth_high_water: self.metrics.queue_depth_high_water(),
            worker_busy: self.metrics.busy(),
            interactive_wait_p99: self.metrics.interactive_wait_p99(),
        }
    }

    /// Admission control (the shed gate): refuses a bulk-class submission
    /// while the interactive queue-wait signal is above the configured
    /// target. Interactive work always passes.
    ///
    /// The signal is the larger of the rolling dequeue-side p99 and the
    /// age of the oldest still-queued interactive submission — the
    /// rolling view alone stalls under starvation (nothing dequeues, so
    /// nothing is recorded) precisely when shedding is most needed.
    fn admit(&self, class: TaskClass) -> Result<(), SubmitError> {
        if class != TaskClass::Bulk {
            return Ok(());
        }
        let Some(target) = self.shed_target else {
            return Ok(());
        };
        let rolling = self.metrics.interactive_wait_p99();
        let queued_head = self
            .current_queue()
            .ok()
            .and_then(|q| q.oldest_queued_wait(TaskClass::Interactive));
        match rolling.into_iter().chain(queued_head).max() {
            Some(signal) if signal > target => {
                self.metrics.record_shed(class);
                Err(SubmitError::Overloaded {
                    interactive_wait_p99: signal,
                })
            }
            _ => Ok(()),
        }
    }

    /// Submits one bulk-class instance with the given ε, **blocking while
    /// the queue is at capacity**, and returns the ticket for its result.
    /// The `Arc<Hypergraph>` payload is shared, never deep-copied —
    /// submit the same instance any number of times for the cost of a
    /// refcount. Shorthand for [`submit_with`](Self::submit_with) with
    /// default [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for a bad ε, [`SubmitError::ShutDown`]
    /// after [`shutdown`](Self::shutdown), [`SubmitError::Overloaded`]
    /// while admission control is shedding bulk work. (Never
    /// [`SubmitError::Backpressure`] — this variant waits instead.)
    pub fn submit(&self, g: Arc<Hypergraph>, epsilon: f64) -> Result<Ticket, SubmitError> {
        self.submit_with(g, epsilon, SubmitOptions::default())
    }

    /// Submits one instance under explicit [`SubmitOptions`] (request
    /// class and optional queue deadline), blocking while the queue is at
    /// capacity.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit), plus [`SubmitError::Overloaded`] for
    /// a bulk submission shed by admission control
    /// ([`with_shed_target`](Self::with_shed_target)). A deadline miss is
    /// *not* a submission error — it resolves the ticket with
    /// [`SolveError::Expired`].
    pub fn submit_with(
        &self,
        g: Arc<Hypergraph>,
        epsilon: f64,
        opts: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        let solver = self.solver_for(epsilon)?;
        self.admit(opts.class)?;
        let seq = self.next_seq();
        let envelope = opts.envelope();
        let token = envelope.token.clone();
        let task = self.recorded_solve(seq, g, epsilon, solver, None, &envelope);
        let inner = self
            .current_queue()?
            .submit_with(envelope.task, task)
            .map_err(|_| SubmitError::ShutDown)?;
        Ok(Ticket {
            seq,
            inner,
            cancel: token,
        })
    }

    /// Non-blocking bulk-class submission: enqueues only if a queue slot
    /// is free right now. The `Arc` handle is cloned (a refcount
    /// increment — the instance data is never copied), so the caller
    /// keeps its handle for a later retry. Shorthand for
    /// [`try_submit_with`](Self::try_submit_with) with default
    /// [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the queue is full, otherwise as
    /// [`submit`](Self::submit).
    pub fn try_submit(&self, g: &Arc<Hypergraph>, epsilon: f64) -> Result<Ticket, SubmitError> {
        self.try_submit_with(g, epsilon, SubmitOptions::default())
    }

    /// Non-blocking submission under explicit [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// As [`try_submit`](Self::try_submit).
    pub fn try_submit_with(
        &self,
        g: &Arc<Hypergraph>,
        epsilon: f64,
        opts: SubmitOptions,
    ) -> Result<Ticket, SubmitError> {
        let solver = self.solver_for(epsilon)?;
        self.admit(opts.class)?;
        let seq = self.next_seq();
        let envelope = opts.envelope();
        let token = envelope.token.clone();
        let task = self.recorded_solve(seq, Arc::clone(g), epsilon, solver, None, &envelope);
        let inner = self
            .current_queue()?
            .try_submit_with(envelope.task, task)
            .map_err(|e| match e {
                TrySubmitError::Full => SubmitError::Backpressure {
                    capacity: self.queue_capacity,
                },
                TrySubmitError::Closed => SubmitError::ShutDown,
            })?;
        Ok(Ticket {
            seq,
            inner,
            cancel: token,
        })
    }

    /// Submits a **revision** of an earlier submission: the delta is
    /// applied to the cached base instance and the re-solve is
    /// **warm-started** from the base's dual packing
    /// ([`MwhvcSolver::solve_warm`]) instead of solving from scratch.
    /// Returns the ticket plus the revised instance (shared — deltas can
    /// be chained by referencing this submission's seq in turn).
    ///
    /// `base_seq` is the [`Ticket::seq`] of any earlier submission whose
    /// solve has **completed successfully** and is still in the bounded
    /// result cache (see [`with_result_cache`](Self::with_result_cache)).
    /// `epsilon` defaults to the base submission's ε, preserving the
    /// `(f + ε)` guarantee across a revision chain.
    ///
    /// Blocks while the queue is at capacity, like
    /// [`submit`](Self::submit).
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownBase`] if `base_seq` cannot be resolved,
    /// [`SubmitError::Invalid`] if the delta does not apply to the base
    /// instance or the ε override is invalid, and
    /// [`SubmitError::ShutDown`] after shutdown.
    pub fn submit_delta(
        &self,
        base_seq: u64,
        delta: &InstanceDelta,
        epsilon: Option<f64>,
    ) -> Result<(Ticket, Arc<Hypergraph>), SubmitError> {
        self.submit_delta_with(base_seq, delta, epsilon, SubmitOptions::default())
    }

    /// [`submit_delta`](Self::submit_delta) under explicit
    /// [`SubmitOptions`] (request class and optional queue deadline).
    ///
    /// # Errors
    ///
    /// As [`submit_delta`](Self::submit_delta); a deadline miss resolves
    /// the ticket with [`SolveError::Expired`].
    pub fn submit_delta_with(
        &self,
        base_seq: u64,
        delta: &InstanceDelta,
        epsilon: Option<f64>,
        opts: SubmitOptions,
    ) -> Result<(Ticket, Arc<Hypergraph>), SubmitError> {
        // A poisoned cache mutex (a worker panicked mid-record) resolves
        // as the typed `UnknownBase` rather than a second panic: the
        // base entry genuinely cannot be *trusted* to be resolvable, and
        // the caller's recovery — resubmit from scratch via `submit` —
        // is the same as for an evicted base. (Formerly an
        // `expect("result cache mutex")`.)
        let entry = self
            .cache
            .lock()
            .map_err(|_| SubmitError::UnknownBase { seq: base_seq })?
            .get(base_seq)
            .ok_or(SubmitError::UnknownBase { seq: base_seq })?;
        let epsilon = epsilon.unwrap_or(entry.epsilon);
        let solver = self.solver_for(epsilon)?;
        self.admit(opts.class)?;
        let outcome = delta
            .apply(&entry.graph)
            .map_err(|e| SubmitError::Invalid(SolveError::Delta(e)))?;
        let warm = WarmState::for_delta(&entry.result, &outcome);
        let g = Arc::new(outcome.graph);
        let seq = self.next_seq();
        let envelope = opts.envelope();
        let token = envelope.token.clone();
        let task = self.recorded_solve(seq, Arc::clone(&g), epsilon, solver, Some(warm), &envelope);
        let inner = self
            .current_queue()?
            .submit_with(envelope.task, task)
            .map_err(|_| SubmitError::ShutDown)?;
        Ok((
            Ticket {
                seq,
                inner,
                cancel: token,
            },
            g,
        ))
    }

    /// Gracefully shuts the service down: close the queue (subsequent
    /// submissions fail with [`SubmitError::ShutDown`]), **drain** every
    /// queued and in-flight solve, and join the workers. Every ticket
    /// issued before this call resolves by the time `shutdown` returns.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.open.store(false, Ordering::Release);
        // Recover a poisoned slot rather than panic: shutdown must always
        // complete, and the slot (`Option<SimPool>`) is coherent after
        // any unwind — taking the pool still drains and joins it.
        let pool = self
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        // Dropping the pool performs the drain-and-join.
        drop(pool);
    }

    /// The per-request solver: base configuration with `epsilon` swapped
    /// in.
    fn solver_for(&self, epsilon: f64) -> Result<MwhvcSolver, SubmitError> {
        let config = self
            .base
            .clone()
            .with_epsilon(epsilon)
            .map_err(SubmitError::Invalid)?;
        Ok(MwhvcSolver::new(config))
    }

    /// A submission handle to the **current** pool's queue, reviving the
    /// pool if it is gone while the service is still open (a node-program
    /// panic during a chunk-parallel solve unwinds through the borrowed
    /// pool and destroys it — the service must not stay wedged). The
    /// handle is cloned out under the lock; the potentially-blocking
    /// submit itself runs with no service lock held.
    fn current_queue(&self) -> Result<TaskQueue<MwhvcNode>, SubmitError> {
        // A poisoned pool mutex (a thread panicked while holding the
        // slot — e.g. a worker-spawn failure during a revive) refuses
        // the submission with the typed `ShutDown` instead of
        // propagating the panic to every subsequent submitter. (Formerly
        // an `expect("pool mutex")`.)
        let mut slot = self.pool.lock().map_err(|_| SubmitError::ShutDown)?;
        // Checked under the pool lock so a revive cannot race a
        // concurrent shutdown's pool takedown.
        if !self.is_open() {
            return Err(SubmitError::ShutDown);
        }
        if let Some(pool) = slot.as_ref() {
            return Ok(pool.queue());
        }
        let pool = self.build_pool();
        let queue = pool.queue();
        *slot = Some(pool);
        Ok(queue)
    }

    /// Builds a pool wired to this service's long-lived metrics sink, so
    /// scheduling counters accumulate across pool rebuilds.
    fn build_pool(&self) -> SimPool<MwhvcNode> {
        SimPool::with_policy(
            self.threads,
            self.queue_capacity,
            Arc::clone(&self.metrics),
            self.policy,
        )
    }

    /// Draws the next sequence id. Ids are allocated before the enqueue so
    /// the solve task knows the key to record its result under.
    fn next_seq(&self) -> u64 {
        // relaxed: only uniqueness/atomicity of the counter matters; the
        // id is handed to the solve task through the queue's mutex, which
        // provides the happens-before edge.
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The solve task for one submission: runs the (cold or warm) solve
    /// on the worker's arena — under the submission's [`Interrupt`], so a
    /// cancel or a deadline miss stops it cooperatively at the next round
    /// boundary and resolves as the typed [`SolveError::Cancelled`] /
    /// [`SolveError::Expired`] — and, on success, records the result in
    /// the delta cache under `seq` before the ticket resolves — so once a
    /// caller has observed a submission's completion, a delta referencing
    /// its seq is guaranteed to find it (bounded-cache eviction aside).
    fn recorded_solve(
        &self,
        seq: u64,
        g: Arc<Hypergraph>,
        epsilon: f64,
        solver: MwhvcSolver,
        warm: Option<WarmState>,
        envelope: &SubmissionEnvelope,
    ) -> impl FnOnce(&mut EngineArena<MwhvcNode>) -> Result<CoverResult, SolveError> + Send + 'static
    {
        let cache = Arc::clone(&self.cache);
        let metrics = Arc::clone(&self.metrics);
        let class = envelope.task.class;
        let solver = solver.with_interrupt(envelope.interrupt.clone());
        let submitted = envelope.submitted;
        #[cfg(test)]
        let hook = self
            .pre_solve
            .lock()
            .expect("pre-solve hook mutex")
            .0
            .clone();
        move |arena| {
            #[cfg(test)]
            if let Some(hook) = &hook {
                hook();
            }
            let result = match &warm {
                None => solver.solve_with_arena(&g, arena),
                Some(warm) => solver.solve_warm_with_arena(&g, warm, arena),
            };
            let result = match result {
                Err(SolveError::Sim(SimError::Interrupted { reason, .. })) => match reason {
                    InterruptReason::Cancelled => Err(SolveError::Cancelled),
                    InterruptReason::DeadlinePassed => Err(SolveError::Expired {
                        waited: submitted.elapsed(),
                    }),
                },
                other => other,
            };
            if let Ok(r) = &result {
                metrics.record_cut(
                    class,
                    r.report.intra_chunk_messages,
                    r.report.cross_chunk_messages,
                );
                // Check the capacity before paying for the result copy, so
                // a service with retention disabled (`with_result_cache(0)`)
                // adds nothing to the pure-streaming hot path beyond one
                // uncontended lock.
                // On a poisoned cache mutex, skip recording instead of
                // panicking the worker: the solve itself succeeded and
                // its ticket must still resolve `Ok`; only future
                // delta-warm-starts against this seq are lost (they fail
                // with the typed `UnknownBase`).
                let enabled = cache.lock().is_ok_and(|c| c.capacity > 0);
                if enabled {
                    let entry = CacheEntry {
                        graph: Arc::clone(&g),
                        result: Arc::new(r.clone()),
                        epsilon,
                    };
                    if let Ok(mut cache) = cache.lock() {
                        cache.insert(seq, entry);
                    }
                }
            }
            result
        }
    }

    /// Blocking enqueue of an arbitrary solve task (the typed `submit` is
    /// a wrapper that additionally records its result for delta
    /// warm-starts; tests inject gated or panicking tasks here).
    #[cfg(test)]
    fn submit_task<F>(&self, f: F) -> Result<Ticket, SubmitError>
    where
        F: FnOnce(&mut EngineArena<MwhvcNode>) -> Result<CoverResult, SolveError> + Send + 'static,
    {
        self.submit_task_with(SubmitOptions::default(), f)
    }

    /// [`submit_task`](Self::submit_task) under explicit options, for
    /// deterministic class-scheduling tests.
    #[cfg(test)]
    fn submit_task_with<F>(&self, opts: SubmitOptions, f: F) -> Result<Ticket, SubmitError>
    where
        F: FnOnce(&mut EngineArena<MwhvcNode>) -> Result<CoverResult, SolveError> + Send + 'static,
    {
        let seq = self.next_seq();
        let envelope = opts.envelope();
        let token = envelope.token.clone();
        let inner = self
            .current_queue()?
            .submit_with(envelope.task, f)
            .map_err(|_| SubmitError::ShutDown)?;
        Ok(Ticket {
            seq,
            inner,
            cancel: token,
        })
    }

    /// Installs the test-only fault-injection hook: runs on the worker
    /// after a task is dequeued, right before its solve starts. Applies
    /// to submissions made *after* this call.
    #[cfg(test)]
    fn set_pre_solve(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.pre_solve.lock().expect("pre-solve hook mutex").0 = Some(Arc::new(hook));
    }

    /// Borrows the worker pool for a chunk-parallel single-instance solve
    /// (see [`SolveSession::solve`](crate::SolveSession::solve)). Queued
    /// task submissions keep flowing to the workers meanwhile — round
    /// jobs take priority in the shared queue. Rebuilds the pool if it is
    /// gone (after a shutdown the rebuilt pool serves round jobs only;
    /// the closed submission queue stays closed).
    pub(crate) fn take_pool(&self) -> SimPool<MwhvcNode> {
        // Recover a poisoned slot rather than panic: the slot is a plain
        // `Option`, coherent after any unwind, and an empty one just
        // means a fresh pool is built — the normal revive path.
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .unwrap_or_else(|| self.build_pool())
    }

    /// Returns the pool after a chunk-parallel solve.
    pub(crate) fn put_pool(&self, pool: SimPool<MwhvcNode>) {
        // Same poison-recovery argument as `take_pool`.
        *self.pool.lock().unwrap_or_else(PoisonError::into_inner) = Some(pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_congest::sync::Condvar;
    use dcover_hypergraph::from_weighted_edge_lists;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> Arc<Hypergraph> {
        Arc::new(from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]]).unwrap())
    }

    /// A two-phase gate the injected tasks block on, to pin queue states
    /// deterministically: a task calls [`Gate::arrive_and_wait`]
    /// (signalling that a worker picked it up, then blocking until
    /// release), the test thread waits for a given arrival count on the
    /// condvar — no spinning, no burned core on 1-CPU CI.
    struct Gate {
        /// (arrived count, open flag).
        state: Mutex<(usize, bool)>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Gate {
                state: Mutex::new((0, false)),
                cv: Condvar::new(),
            })
        }
        fn release(&self) {
            let mut state = self.state.lock().unwrap();
            state.1 = true;
            self.cv.notify_all();
        }
        fn arrive_and_wait(&self) {
            let mut state = self.state.lock().unwrap();
            state.0 += 1;
            self.cv.notify_all();
            while !state.1 {
                state = self.cv.wait(state).unwrap();
            }
        }
        fn await_arrivals(&self, n: usize) {
            let mut state = self.state.lock().unwrap();
            while state.0 < n {
                state = self.cv.wait(state).unwrap();
            }
        }
    }

    /// Occupies every worker with a gated task and waits (condvar-based —
    /// the tasks themselves signal pickup) until all of them have been
    /// *dequeued*, so subsequent submissions fill the queue
    /// deterministically.
    fn occupy_workers(service: &SolveService, gate: &Arc<Gate>) -> Vec<Ticket> {
        let tickets: Vec<Ticket> = (0..service.threads())
            .map(|_| {
                let gate = Arc::clone(gate);
                service
                    .submit_task(move |_arena| {
                        gate.arrive_and_wait();
                        Ok(CoverResult::empty())
                    })
                    .unwrap()
            })
            .collect();
        gate.await_arrivals(service.threads());
        tickets
    }

    #[test]
    fn backpressure_is_reported_without_blocking() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 2);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let q1 = service.try_submit(&g, 0.5).unwrap();
        let q2 = service.try_submit(&g, 0.5).unwrap();
        let start = std::time::Instant::now();
        let err = service.try_submit(&g, 0.5).expect_err("queue is full");
        assert_eq!(err, SubmitError::Backpressure { capacity: 2 });
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "try_submit must not block"
        );
        // The rejected submission consumed no queue slot; releasing the
        // gate lets everything finish.
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        assert!(q1.wait().unwrap().cover.is_cover_of(&g));
        assert!(q2.wait().unwrap().cover.is_cover_of(&g));
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let queued: Vec<Ticket> = (0..3)
            .map(|_| service.submit(Arc::clone(&g), 0.5).unwrap())
            .collect();
        // The workers are already parked inside the gated tasks
        // (`occupy_workers` waited on the condvar); release from a helper
        // thread while `shutdown` blocks on the drain — the drain itself
        // is the rendezvous, no sleep needed.
        let releaser = {
            let gate = Arc::clone(&gate);
            dcover_congest::sync::thread::spawn(move || gate.release())
        };
        service.shutdown();
        releaser.join().unwrap();
        assert!(!service.is_open());
        // Every ticket issued before shutdown resolved during the drain.
        for t in busy {
            assert!(t.is_done(), "gated ticket drained");
            t.wait().unwrap();
        }
        for t in queued {
            assert!(t.is_done(), "queued ticket drained");
            assert!(t.wait().unwrap().cover.is_cover_of(&g));
        }
        // And the door is closed now.
        assert_eq!(
            service.submit(Arc::clone(&g), 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
        assert_eq!(
            service.try_submit(&g, 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn panicking_task_fails_only_its_own_ticket() {
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let g = tiny();
        let before = service.submit(Arc::clone(&g), 0.5).unwrap();
        let bomb = service
            .submit_task(|_arena| panic!("instance 7 exploded"))
            .unwrap();
        let after = service.submit(Arc::clone(&g), 0.5).unwrap();
        let err = bomb.wait().expect_err("panic surfaces as SolveError");
        match err {
            SolveError::Panicked { message } => {
                assert!(message.contains("instance 7 exploded"), "got: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(before.wait().unwrap().cover.is_cover_of(&g));
        assert!(after.wait().unwrap().cover.is_cover_of(&g));
        // The service keeps serving afterwards.
        assert!(service.submit(g, 0.5).unwrap().wait().is_ok());
    }

    #[test]
    fn results_are_bit_identical_to_standalone_solver() {
        let mut rng = StdRng::seed_from_u64(77);
        let service = SolveService::with_epsilon(0.5, 3).unwrap();
        for i in 0..10 {
            let g = Arc::new(random_uniform(
                &RandomUniform {
                    n: 20 + i * 5,
                    m: 40 + i * 11,
                    rank: 2 + i % 3,
                    weights: WeightDist::Uniform { min: 1, max: 9 },
                },
                &mut rng,
            ));
            let eps = [0.25, 0.5, 1.0][i % 3];
            let ticket = service.submit(Arc::clone(&g), eps).unwrap();
            let served = ticket.wait().unwrap();
            let solo = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
            assert_eq!(served.cover, solo.cover, "instance {i}");
            assert_eq!(served.duals, solo.duals, "instance {i}");
            assert_eq!(served.levels, solo.levels, "instance {i}");
            assert_eq!(served.report, solo.report, "instance {i}");
        }
    }

    #[test]
    fn per_submission_epsilon_overrides_base() {
        let service = SolveService::with_epsilon(1.0, 2).unwrap();
        let g = tiny();
        let tight = service
            .submit(Arc::clone(&g), 0.05)
            .unwrap()
            .wait()
            .unwrap();
        let solo = MwhvcSolver::with_epsilon(0.05).unwrap().solve(&g).unwrap();
        assert_eq!(tight.duals, solo.duals);
        assert_eq!(tight.report, solo.report);
        // Invalid ε is refused at the door.
        assert!(matches!(
            service.submit(Arc::clone(&g), 0.0),
            Err(SubmitError::Invalid(SolveError::InvalidEpsilon { .. }))
        ));
        assert!(matches!(
            service.try_submit(&g, 7.0),
            Err(SubmitError::Invalid(SolveError::InvalidEpsilon { .. }))
        ));
    }

    #[test]
    fn bad_instance_resolves_its_own_ticket_only() {
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let good = tiny();
        let oversized = Arc::new(from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap());
        let a = service.submit(Arc::clone(&good), 0.5).unwrap();
        let b = service.submit(oversized, 0.5).unwrap();
        let c = service.submit(Arc::clone(&good), 0.5).unwrap();
        assert!(a.wait().is_ok());
        assert!(matches!(
            b.wait(),
            Err(SolveError::WeightTooLarge { vertex: 0, .. })
        ));
        assert!(c.wait().is_ok());
    }

    #[test]
    fn sequence_ids_are_unique_and_monotone() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 1);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let t1 = service.try_submit(&g, 0.5).unwrap();
        // A rejected submission leaves a gap (the id is drawn before the
        // enqueue so the task can record its result under it), but never
        // a duplicate.
        assert!(service.try_submit(&g, 0.5).is_err());
        gate.release();
        let t2 = service.submit(Arc::clone(&g), 0.5).unwrap();
        assert_eq!(t1.seq(), busy.len() as u64);
        assert_eq!(t2.seq(), t1.seq() + 2);
        for t in busy {
            t.wait().unwrap();
        }
        t1.wait().unwrap();
        t2.wait().unwrap();
    }

    #[test]
    fn service_revives_after_a_poisoned_chunk_parallel_solve() {
        // A node-program panic inside SolveSession::solve unwinds through
        // the borrowed pool and destroys it. Replicate that (take the
        // pool out and drop it without putting one back): the service
        // must revive on the next submission, not stay wedged rejecting
        // everything while is_open() still says true.
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        drop(service.take_pool());
        assert!(service.is_open());
        assert_eq!(service.queued(), 0);
        let g = tiny();
        let t = service.submit(Arc::clone(&g), 0.5).unwrap();
        assert!(t.wait().unwrap().cover.is_cover_of(&g));
        let t = service.try_submit(&g, 0.5).unwrap();
        assert!(t.wait().is_ok());
        // Shutdown still closes the revived pool for good.
        service.shutdown();
        assert_eq!(
            service.submit(g, 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
    }

    #[test]
    fn submit_delta_warm_starts_against_the_cached_predecessor() {
        use crate::warm::WarmState;
        use dcover_hypergraph::{EdgeId, InstanceDelta, VertexId};
        let mut rng = StdRng::seed_from_u64(91);
        let g = Arc::new(random_uniform(
            &RandomUniform {
                n: 30,
                m: 80,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 20 },
            },
            &mut rng,
        ));
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let base = service.submit(Arc::clone(&g), 0.5).unwrap();
        let base_seq = base.seq();
        let base_result = base.wait().unwrap();

        let delta = InstanceDelta {
            remove_edges: vec![EdgeId::new(5)],
            add_edges: vec![vec![VertexId::new(1), VertexId::new(4)]],
            set_weights: vec![(VertexId::new(2), 50)],
        };
        let (ticket, revised) = service.submit_delta(base_seq, &delta, None).unwrap();
        let revised_seq = ticket.seq();
        let served = ticket.wait().unwrap();

        // Bit-identical to driving the warm path by hand.
        let out = delta.apply(&g).unwrap();
        assert_eq!(*revised, out.graph);
        let direct = MwhvcSolver::with_epsilon(0.5)
            .unwrap()
            .solve_warm(&out.graph, &WarmState::for_delta(&base_result, &out))
            .unwrap();
        assert_eq!(served.cover, direct.cover);
        assert_eq!(served.duals, direct.duals);
        assert_eq!(served.levels, direct.levels);
        assert_eq!(served.report, direct.report);

        // Deltas chain: revise the revision.
        let delta2 = InstanceDelta {
            set_weights: vec![(VertexId::new(9), 1)],
            ..InstanceDelta::empty()
        };
        let (ticket2, revised2) = service.submit_delta(revised_seq, &delta2, None).unwrap();
        let chained = ticket2.wait().unwrap();
        assert!(chained.cover.is_cover_of(&revised2));
    }

    #[test]
    fn submit_delta_error_paths() {
        use dcover_hypergraph::{EdgeId, InstanceDelta};
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        let g = tiny();

        // Unknown base: never submitted.
        assert_eq!(
            service
                .submit_delta(99, &InstanceDelta::empty(), None)
                .unwrap_err(),
            SubmitError::UnknownBase { seq: 99 }
        );

        let base = service.submit(Arc::clone(&g), 0.5).unwrap();
        let seq = base.seq();
        base.wait().unwrap();

        // A delta that does not apply to the base instance.
        let bad = InstanceDelta {
            remove_edges: vec![EdgeId::new(42)],
            ..InstanceDelta::empty()
        };
        assert!(matches!(
            service.submit_delta(seq, &bad, None),
            Err(SubmitError::Invalid(SolveError::Delta(_)))
        ));

        // A bad ε override is refused at the door, like submit's.
        assert!(matches!(
            service.submit_delta(seq, &InstanceDelta::empty(), Some(0.0)),
            Err(SubmitError::Invalid(SolveError::InvalidEpsilon { .. }))
        ));

        // A failed solve is never cached: its seq is not a valid base.
        let oversized = Arc::new(from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap());
        let bad_ticket = service.submit(oversized, 0.5).unwrap();
        let bad_seq = bad_ticket.seq();
        assert!(bad_ticket.wait().is_err());
        assert_eq!(
            service
                .submit_delta(bad_seq, &InstanceDelta::empty(), None)
                .unwrap_err(),
            SubmitError::UnknownBase { seq: bad_seq }
        );

        // After shutdown the door is closed for deltas too.
        service.shutdown();
        assert!(matches!(
            service.submit_delta(seq, &InstanceDelta::empty(), None),
            Err(SubmitError::ShutDown)
        ));
    }

    #[test]
    fn result_cache_is_bounded_and_evicts_oldest() {
        use dcover_hypergraph::InstanceDelta;
        let service = SolveService::with_epsilon(0.5, 1)
            .unwrap()
            .with_result_cache(2);
        let g = tiny();
        let seqs: Vec<u64> = (0..3)
            .map(|_| {
                let t = service.submit(Arc::clone(&g), 0.5).unwrap();
                let seq = t.seq();
                t.wait().unwrap();
                seq
            })
            .collect();
        // Oldest entry evicted; the two newest still resolve.
        assert_eq!(
            service
                .submit_delta(seqs[0], &InstanceDelta::empty(), None)
                .unwrap_err(),
            SubmitError::UnknownBase { seq: seqs[0] }
        );
        for &seq in &seqs[1..] {
            let (t, _) = service
                .submit_delta(seq, &InstanceDelta::empty(), None)
                .unwrap();
            t.wait().unwrap();
        }
    }

    #[test]
    fn delta_epsilon_defaults_to_the_base_submissions_epsilon() {
        use dcover_hypergraph::InstanceDelta;
        let service = SolveService::with_epsilon(1.0, 2).unwrap();
        let g = tiny();
        let base = service.submit(Arc::clone(&g), 0.25).unwrap();
        let seq = base.seq();
        let cold = base.wait().unwrap();
        let (t, _) = service
            .submit_delta(seq, &InstanceDelta::empty(), None)
            .unwrap();
        let warm = t.wait().unwrap();
        // Same ε as the base (0.25), not the service base ε (1.0): the
        // empty-delta warm result is bit-identical to the 0.25 cold one.
        assert_eq!(warm.cover, cold.cover);
        assert_eq!(warm.duals, cold.duals);
        assert_eq!(warm.levels, cold.levels);
        assert_eq!(warm.dual_total, cold.dual_total);
    }

    #[test]
    fn try_wait_polls_until_done() {
        let gate = Gate::new();
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let mut ticket = service.submit(Arc::clone(&g), 0.5).unwrap();
        ticket = ticket
            .try_wait()
            .expect_err("still gated behind the worker");
        assert!(!ticket.is_done());
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        // The solve is tiny; poll until it lands.
        loop {
            match ticket.try_wait() {
                Ok(result) => {
                    assert!(result.unwrap().cover.is_cover_of(&g));
                    break;
                }
                Err(t) => {
                    ticket = t;
                    std::thread::yield_now();
                }
            }
        }
    }

    #[test]
    fn interactive_submissions_dequeue_before_bulk_fifo_within_class() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let busy = occupy_workers(&service, &gate);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let mut tickets = Vec::new();
        for name in ["b1", "b2"] {
            let order = Arc::clone(&order);
            tickets.push(
                service
                    .submit_task_with(SubmitOptions::bulk(), move |_arena| {
                        order.lock().unwrap().push(name);
                        Ok(CoverResult::empty())
                    })
                    .unwrap(),
            );
        }
        for name in ["i1", "i2"] {
            let order = Arc::clone(&order);
            tickets.push(
                service
                    .submit_task_with(SubmitOptions::interactive(), move |_arena| {
                        order.lock().unwrap().push(name);
                        Ok(CoverResult::empty())
                    })
                    .unwrap(),
            );
        }
        gate.release();
        for t in busy.into_iter().chain(tickets) {
            t.wait().unwrap();
        }
        // Interactive jumped the queued bulk work; FIFO within each class.
        assert_eq!(*order.lock().unwrap(), vec!["i1", "i2", "b1", "b2"]);
    }

    #[test]
    fn queued_submission_past_its_deadline_resolves_as_expired() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let doomed = service
            .submit_with(
                Arc::clone(&g),
                0.5,
                SubmitOptions::interactive().with_deadline(std::time::Duration::ZERO),
            )
            .unwrap();
        let alive = service.submit(Arc::clone(&g), 0.5).unwrap();
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        let (result, timing) = doomed.wait_timed();
        match result {
            Err(SolveError::Expired { waited }) => assert_eq!(waited, timing.queue),
            other => panic!("expected Expired, got {other:?}"),
        }
        assert_eq!(timing.run, std::time::Duration::ZERO, "solve never ran");
        assert!(alive.wait().unwrap().cover.is_cover_of(&g));
        let m = service.metrics();
        assert_eq!(m.interactive.expired, 1);
        assert_eq!(m.interactive.completed, 0);
        assert_eq!(m.bulk.expired, 0);
    }

    #[test]
    fn cancelling_a_queued_submission_resolves_as_cancelled_without_running() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let doomed = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        let alive = service.submit(Arc::clone(&g), 0.5).unwrap();
        doomed.cancel();
        doomed.cancel(); // idempotent
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        let (result, timing) = doomed.wait_timed();
        assert!(matches!(result, Err(SolveError::Cancelled)), "{result:?}");
        assert_eq!(timing.run, std::time::Duration::ZERO, "solve never ran");
        assert!(alive.wait().unwrap().cover.is_cover_of(&g));
        let m = service.metrics();
        assert_eq!(m.interactive.cancelled, 1);
        assert_eq!(m.interactive.completed, 0);
        assert_eq!(m.interactive.expired, 0);
    }

    #[test]
    fn cancelling_a_running_solve_stops_it_at_a_round_boundary() {
        let gate = Gate::new();
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        {
            let gate = Arc::clone(&gate);
            service.set_pre_solve(move || gate.arrive_and_wait());
        }
        let g = tiny();
        let t = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        // The worker has dequeued the task and sits inside it, about to
        // start the solve; the cancel lands mid-task.
        gate.await_arrivals(1);
        t.cancel();
        gate.release();
        assert!(matches!(t.wait(), Err(SolveError::Cancelled)));
        // A mid-run stop is a *completed* task at the pool level (its
        // worker ran it); the pool-level cancelled counter only counts
        // queued discards.
        let m = service.metrics();
        assert_eq!(m.interactive.completed, 1);
        assert_eq!(m.interactive.cancelled, 0);
    }

    #[test]
    fn a_deadline_that_passes_mid_run_resolves_as_typed_expired() {
        // The acceptance shape: the solve is already on a worker when its
        // deadline passes; it must stop at the next round boundary and
        // resolve as Expired — not run to completion, not panic.
        let gate = Gate::new();
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        {
            let gate = Arc::clone(&gate);
            service.set_pre_solve(move || gate.arrive_and_wait());
        }
        let g = tiny();
        let deadline = std::time::Duration::from_millis(300);
        let t = service
            .submit_with(
                Arc::clone(&g),
                0.5,
                SubmitOptions::interactive().with_deadline(deadline),
            )
            .unwrap();
        // Dequeued (and past the dequeue-time deadline check) well before
        // the deadline; the hook holds the solve while the deadline passes.
        gate.await_arrivals(1);
        // wall-clock: real time must pass the deadline while the hook
        // holds the solve; not a synchronization point.
        std::thread::sleep(deadline + std::time::Duration::from_millis(50));
        gate.release();
        let (result, timing) = t.wait_timed();
        match result {
            Err(SolveError::Expired { waited }) => {
                assert!(waited >= deadline, "full-lifecycle wait, got {waited:?}")
            }
            other => panic!("expected Expired, got {other:?}"),
        }
        assert!(
            timing.run > std::time::Duration::ZERO,
            "stopped mid-run, not discarded from the queue"
        );
        let m = service.metrics();
        assert_eq!(m.interactive.expired, 0, "no queued-expiry was recorded");
        assert_eq!(m.interactive.completed, 1);
    }

    #[test]
    fn a_cancel_that_loses_the_race_resolves_with_the_finished_result() {
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        let g = tiny();
        let t = service.submit(Arc::clone(&g), 0.5).unwrap();
        while !t.is_done() {
            std::thread::yield_now();
        }
        // The solve already finished; the cancel is a no-op and the
        // ticket resolves exactly once, with the valid result.
        t.cancel();
        assert!(t.wait().unwrap().cover.is_cover_of(&g));
    }

    #[test]
    fn bulk_submissions_are_shed_while_interactive_p99_exceeds_target() {
        use dcover_hypergraph::InstanceDelta;
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8)
            .with_shed_target(std::time::Duration::from_millis(1));
        let g = tiny();
        // Solve one instance before the overload so a delta base exists.
        let base = service.submit(Arc::clone(&g), 0.5).unwrap();
        let base_seq = base.seq();
        base.wait().unwrap();
        // Manufacture a slow interactive queue wait: the submission sits
        // behind a gated worker for ≥10 ms before being dequeued.
        let busy = occupy_workers(&service, &gate);
        let slow = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        // wall-clock: the submission must accumulate ≥10 ms of real
        // queue-wait to push the rolling p99 over the 1 ms shed target.
        std::thread::sleep(std::time::Duration::from_millis(10));
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        slow.wait().unwrap();
        // The rolling p99 now reflects the ≥10 ms wait: bulk is shed on
        // every submission path, interactive still passes.
        assert!(matches!(
            service.try_submit(&g, 0.5),
            Err(SubmitError::Overloaded { .. })
        ));
        assert!(matches!(
            service.submit(Arc::clone(&g), 0.5),
            Err(SubmitError::Overloaded { .. })
        ));
        assert!(matches!(
            service.submit_delta(base_seq, &InstanceDelta::empty(), None),
            Err(SubmitError::Overloaded { .. })
        ));
        service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap()
            .wait()
            .unwrap();
        let m = service.metrics();
        assert_eq!(m.bulk.shed, 3);
        assert_eq!(m.interactive.shed, 0);
        assert!(m.interactive_wait_p99.unwrap() >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn a_starved_queued_interactive_submission_sheds_bulk_before_any_dequeue() {
        // The rolling dequeue-side p99 cannot trip while interactive
        // work is starved (nothing dequeues, nothing is recorded): the
        // age of the oldest *queued* interactive submission must carry
        // the signal on its own.
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8)
            .with_shed_target(std::time::Duration::from_millis(5));
        let g = tiny();
        let busy = occupy_workers(&service, &gate);
        // Queued behind the gated worker: it never dequeues during the
        // overload, so the rolling p99 stays empty.
        let starved = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        // wall-clock: the queued head must age ≥20 ms of real time so its
        // age alone exceeds the 5 ms shed target.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(service.metrics().interactive_wait_p99.is_none());
        match service.try_submit(&g, 0.5) {
            Err(SubmitError::Overloaded {
                interactive_wait_p99,
            }) => assert!(interactive_wait_p99 >= std::time::Duration::from_millis(5)),
            other => panic!("expected Overloaded from the queued-head signal, got {other:?}"),
        }
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        starved.wait().unwrap();
        let m = service.metrics();
        assert_eq!(m.bulk.shed, 1);
        // With the lane drained, the gate reopens: the rolling p99 now
        // holds one large sample, but the head-age component is gone —
        // admission follows whichever view is currently larger.
        assert!(m.interactive_wait_p99.unwrap() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn without_a_shed_target_bulk_is_never_shed() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let g = tiny();
        let busy = occupy_workers(&service, &gate);
        let slow = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        // wall-clock: accumulates a real ≥5 ms queue wait to prove even a
        // large p99 sample sheds nothing when no target is configured.
        std::thread::sleep(std::time::Duration::from_millis(5));
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        slow.wait().unwrap();
        let t = service.try_submit(&g, 0.5).expect("no shedding configured");
        t.wait().unwrap();
        assert_eq!(service.metrics().bulk.shed, 0);
    }

    #[test]
    fn bulk_aging_promotes_starved_bulk_work_over_interactive() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8)
            .with_bulk_max_wait(std::time::Duration::ZERO);
        let busy = occupy_workers(&service, &gate);
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let mut tickets = Vec::new();
        for (name, opts) in [
            ("b1", SubmitOptions::bulk()),
            ("i1", SubmitOptions::interactive()),
        ] {
            let order = Arc::clone(&order);
            tickets.push(
                service
                    .submit_task_with(opts, move |_arena| {
                        order.lock().unwrap().push(name);
                        Ok(CoverResult::empty())
                    })
                    .unwrap(),
            );
        }
        gate.release();
        for t in busy.into_iter().chain(tickets) {
            t.wait().unwrap();
        }
        // With a zero aging bound the queued bulk task is instantly
        // "aged" and beats the younger interactive submission (strict
        // class priority would run i1 first — see
        // interactive_submissions_dequeue_before_bulk_fifo_within_class).
        assert_eq!(*order.lock().unwrap(), vec!["b1", "i1"]);
    }

    #[test]
    fn metrics_snapshot_counts_classes_histograms_and_busy_time() {
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let g = tiny();
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(service.submit(Arc::clone(&g), 0.5).unwrap());
        }
        for _ in 0..2 {
            tickets.push(
                service
                    .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
                    .unwrap(),
            );
        }
        for t in tickets {
            let (result, timing) = t.wait_timed();
            result.unwrap();
            assert!(timing.run > std::time::Duration::ZERO, "solve was clocked");
        }
        let m = service.metrics();
        assert_eq!(m.bulk.submitted, 3);
        assert_eq!(m.bulk.completed, 3);
        assert_eq!(m.interactive.submitted, 2);
        assert_eq!(m.interactive.completed, 2);
        assert_eq!(m.bulk.queue_wait.count(), 3);
        assert_eq!(m.bulk.run_time.count(), 3);
        assert_eq!(m.interactive.run_time.count(), 2);
        assert_eq!(m.interactive.expired + m.bulk.expired, 0);
        assert!(m.queue_depth_high_water >= 1);
        assert!(m.worker_busy > std::time::Duration::ZERO);
        assert_eq!(m.class(TaskClass::Bulk).completed, 3);
        // The snapshot stays readable after shutdown.
        service.shutdown();
        assert_eq!(service.metrics().bulk.completed, 3);
    }

    #[test]
    fn metrics_accumulate_across_pool_revival() {
        // Regression (node-program-panic shape): a panic during a
        // chunk-parallel solve unwinds through the borrowed pool and
        // destroys it; the revived pool must keep recording into the
        // same shared SchedMetrics sink, and every counter recorded
        // before the revival — including the cancellation and shedding
        // counters — must survive it.
        let gate = Gate::new();
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let g = tiny();
        service.submit(Arc::clone(&g), 0.5).unwrap().wait().unwrap();
        // A queued interactive cancel and a shed, recorded pre-revival.
        let busy = occupy_workers(&service, &gate);
        let doomed = service
            .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
            .unwrap();
        doomed.cancel();
        service.metrics.record_shed(TaskClass::Bulk);
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        assert!(matches!(doomed.wait(), Err(SolveError::Cancelled)));
        // Destroy the pool (the poisoned-solve shape); the revived pool
        // must keep recording into the same metrics sink.
        drop(service.take_pool());
        service.submit(Arc::clone(&g), 0.5).unwrap().wait().unwrap();
        let m = service.metrics();
        // occupy_workers injected `threads` bulk tasks alongside the two
        // real bulk submissions.
        let injected = service.threads() as u64;
        assert_eq!(m.bulk.submitted, 2 + injected);
        assert_eq!(m.bulk.completed, 2 + injected);
        assert_eq!(m.bulk.shed, 1);
        assert_eq!(m.interactive.submitted, 1);
        assert_eq!(m.interactive.cancelled, 1);
        assert_eq!(m.interactive.completed, 0);
    }

    #[test]
    fn backpressure_rejections_show_up_in_metrics() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 1);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let q = service.try_submit(&g, 0.5).unwrap();
        assert!(matches!(
            service.try_submit_with(&g, 0.5, SubmitOptions::interactive()),
            Err(SubmitError::Backpressure { .. })
        ));
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        q.wait().unwrap();
        let m = service.metrics();
        assert_eq!(m.interactive.rejected, 1);
        assert_eq!(m.bulk.rejected, 0);
    }

    #[test]
    fn shrinking_the_result_cache_evicts_resident_entries() {
        // Regression: with_result_cache used to only reassign `capacity`,
        // leaving already-inserted entries resident and resolvable past
        // the new bound (and capacity 0 left everything behind).
        use dcover_hypergraph::InstanceDelta;
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        let g = tiny();
        let seqs: Vec<u64> = (0..3)
            .map(|_| {
                let t = service.submit(Arc::clone(&g), 0.5).unwrap();
                let seq = t.seq();
                t.wait().unwrap();
                seq
            })
            .collect();
        // Shrink below the population: only the newest entry survives.
        let service = service.with_result_cache(1);
        for &seq in &seqs[..2] {
            assert_eq!(
                service
                    .submit_delta(seq, &InstanceDelta::empty(), None)
                    .unwrap_err(),
                SubmitError::UnknownBase { seq },
                "entry {seq} must have been evicted by the shrink"
            );
        }
        let (t, _) = service
            .submit_delta(seqs[2], &InstanceDelta::empty(), None)
            .unwrap();
        let delta_seq = t.seq();
        t.wait().unwrap();
        // Capacity 0 clears the survivors (including the delta's own
        // freshly recorded result) and disables retention entirely.
        let service = service.with_result_cache(0);
        for seq in [seqs[2], delta_seq] {
            assert_eq!(
                service
                    .submit_delta(seq, &InstanceDelta::empty(), None)
                    .unwrap_err(),
                SubmitError::UnknownBase { seq }
            );
        }
        let t = service.submit(Arc::clone(&g), 0.5).unwrap();
        let seq = t.seq();
        t.wait().unwrap();
        assert_eq!(
            service
                .submit_delta(seq, &InstanceDelta::empty(), None)
                .unwrap_err(),
            SubmitError::UnknownBase { seq },
            "capacity 0 retains nothing"
        );
    }

    #[test]
    fn growing_the_result_cache_keeps_resident_entries() {
        use dcover_hypergraph::InstanceDelta;
        let service = SolveService::with_epsilon(0.5, 1)
            .unwrap()
            .with_result_cache(2);
        let g = tiny();
        let t = service.submit(Arc::clone(&g), 0.5).unwrap();
        let seq = t.seq();
        t.wait().unwrap();
        let service = service.with_result_cache(64);
        let (t, _) = service
            .submit_delta(seq, &InstanceDelta::empty(), None)
            .unwrap();
        t.wait().unwrap();
    }

    #[test]
    fn delta_submissions_carry_class_and_deadline() {
        use dcover_hypergraph::InstanceDelta;
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let g = tiny();
        let base = service.submit(Arc::clone(&g), 0.5).unwrap();
        let base_seq = base.seq();
        base.wait().unwrap();
        let busy = occupy_workers(&service, &gate);
        let (doomed, _) = service
            .submit_delta_with(
                base_seq,
                &InstanceDelta::empty(),
                None,
                SubmitOptions::interactive().with_deadline(std::time::Duration::ZERO),
            )
            .unwrap();
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        assert!(matches!(doomed.wait(), Err(SolveError::Expired { .. })));
        assert_eq!(service.metrics().interactive.expired, 1);
    }
}

/// Model-checked interleaving scenarios for the service layer, compiled
/// only under `RUSTFLAGS="--cfg conc_check"` (the `dcover_congest::sync`
/// facade then routes every sync operation through the `dcover_conccheck`
/// scheduler). They live in a unit-test module because they inject faults
/// through the test-only [`SolveService::set_pre_solve`] hook.
///
/// Run with:
///
/// ```text
/// RUSTFLAGS="--cfg conc_check" cargo test -p dcover-core --lib conc_check
/// ```
#[cfg(all(test, conc_check))]
mod conc_check_tests {
    use super::*;
    use dcover_conccheck::{explore, Config};
    use dcover_congest::sync::atomic::AtomicBool;
    use dcover_congest::sync::thread;
    use dcover_hypergraph::from_weighted_edge_lists;

    fn tiny() -> Arc<Hypergraph> {
        Arc::new(from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]]).unwrap())
    }

    /// Per-scenario exploration floor; together with the three pool
    /// scenarios in `dcover-congest` the suite sums past the
    /// 10 000-interleaving acceptance bar.
    const FLOOR: usize = 1500;

    /// Extra seeded random iterations per scenario, on top of the floor —
    /// CI's conc-check job sets this to 5000.
    fn extra_random_iters() -> usize {
        std::env::var("CONC_CHECK_RANDOM_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    }

    /// Bounded-exhaustive pass capped at `floor`, topped up with a seeded
    /// random walk so the scenario always explores at least `floor`
    /// interleavings, plus any `CONC_CHECK_RANDOM_ITERS` requested by the
    /// environment.
    fn explore_at_least<F: Fn() + Send + Sync>(floor: usize, seed: u64, body: F) -> usize {
        let first = explore(Config::exhaustive(2, floor), &body);
        let mut total = first.executions;
        if total < floor {
            total += explore(Config::random(seed, floor - total), &body).executions;
        }
        let extra = extra_random_iters();
        if extra > 0 {
            total += explore(Config::random(seed ^ 0xA5A5, extra), &body).executions;
        }
        total
    }

    /// Ledger identity for one class snapshot: every accepted submission
    /// resolved exactly one way (`rejected`/`shed` never enter the queue
    /// and sit outside the sum).
    fn assert_identity(c: &ClassMetrics, class: TaskClass) {
        assert_eq!(
            c.submitted,
            c.completed + c.expired + c.cancelled + c.panicked,
            "ledger identity violated for {class:?}"
        );
    }

    /// One injected solve panic races two concurrent submitters on a
    /// single worker: exactly one ticket resolves as `Panicked`, the
    /// worker survives (a third submission completes), and the drained
    /// ledger balances with `panicked == 1`.
    #[test]
    fn panic_revival_under_concurrent_submitters() {
        let total = explore_at_least(FLOOR, 0xBADCA11, || {
            let service = Arc::new(SolveService::with_queue_capacity(
                MwhvcConfig::new(0.5).unwrap(),
                1,
                8,
            ));
            let poison = Arc::new(AtomicBool::new(true));
            {
                let poison = Arc::clone(&poison);
                service.set_pre_solve(move || {
                    if poison.swap(false, Ordering::SeqCst) {
                        panic!("injected solve panic");
                    }
                });
            }
            let g = tiny();
            let submitter = {
                let service = Arc::clone(&service);
                let g = Arc::clone(&g);
                thread::spawn(move || service.submit(g, 0.5).unwrap())
            };
            let a = service.submit(Arc::clone(&g), 0.5).unwrap();
            let b = submitter.join().unwrap();
            let ra = a.wait();
            let rb = b.wait();
            let panicked = [&ra, &rb]
                .iter()
                .filter(|r| matches!(r, Err(SolveError::Panicked { .. })))
                .count();
            assert_eq!(panicked, 1, "exactly one dequeue hits the poison");
            for res in [ra, rb].into_iter().flatten() {
                assert!(res.cover.is_cover_of(&g));
            }
            // Revival: the worker that caught the panic still serves.
            let revived = service.submit(Arc::clone(&g), 0.5).unwrap();
            assert!(revived
                .wait()
                .expect("poison consumed")
                .cover
                .is_cover_of(&g));
            service.shutdown();
            let m = service.metrics();
            assert_eq!(m.bulk.submitted, 3);
            assert_eq!(m.bulk.panicked, 1);
            assert_eq!(m.bulk.completed, 2);
            assert_identity(&m.bulk, TaskClass::Bulk);
            assert_identity(&m.interactive, TaskClass::Interactive);
        });
        assert!(total >= FLOOR, "explored only {total} interleavings");
    }

    /// The admission gate's shed read (rolling p99 + queued-head age)
    /// races bulk submission and the drain. The shed branch depends on
    /// real wall-clock waits, so this scenario runs seeded random walks
    /// only — a replayed exhaustive schedule would diverge on the timing
    /// branch. Whichever branch each interleaving takes, every accepted
    /// ticket resolves exactly once and the ledger balances.
    #[test]
    fn shed_gate_read_races_bulk_aging() {
        let report = explore(
            Config::random(0x5EDA6E, FLOOR + extra_random_iters()),
            || {
                let service = Arc::new(
                    SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8)
                        .with_shed_target(Duration::from_nanos(1))
                        .with_bulk_max_wait(Duration::ZERO),
                );
                let g = tiny();
                let interactive = service
                    .submit_with(Arc::clone(&g), 0.5, SubmitOptions::interactive())
                    .unwrap();
                let submitter = {
                    let service = Arc::clone(&service);
                    let g = Arc::clone(&g);
                    thread::spawn(move || service.submit_with(g, 0.5, SubmitOptions::bulk()))
                };
                let bulk = submitter.join().unwrap();
                service.shutdown();
                assert!(interactive
                    .wait()
                    .expect("interactive is never shed")
                    .cover
                    .is_cover_of(&g));
                match bulk {
                    Ok(ticket) => {
                        assert!(ticket
                            .wait()
                            .expect("accepted work drains")
                            .cover
                            .is_cover_of(&g));
                    }
                    Err(SubmitError::Overloaded { .. }) => {}
                    Err(other) => panic!("unexpected submit error: {other:?}"),
                }
                let m = service.metrics();
                assert_identity(&m.bulk, TaskClass::Bulk);
                assert_identity(&m.interactive, TaskClass::Interactive);
                assert_eq!(m.interactive.submitted, 1);
                assert_eq!(m.bulk.submitted + m.bulk.shed, 1);
            },
        );
        assert!(report.executions >= FLOOR);
    }
}
