//! The asynchronous solve service: a submission queue with backpressure
//! in front of one persistent worker pool.
//!
//! [`SolveSession::solve_batch`](crate::SolveSession::solve_batch) serves
//! *pre-assembled* batches; a real server receives instances **as they
//! arrive**. [`SolveService`] is that front door:
//!
//! * [`submit`](SolveService::submit) hands in one shared read-only
//!   instance (`Arc<Hypergraph>` — **never deep-copied**, see below) and
//!   returns a [`Ticket`] immediately; the solve runs on whichever pool
//!   worker frees up first. When the bounded queue is full, `submit`
//!   blocks until a slot opens.
//! * [`try_submit`](SolveService::try_submit) never blocks: a full queue
//!   is reported as [`SubmitError::Backpressure`], so an ingestion loop
//!   can shed or defer load instead of stalling.
//! * [`Ticket::wait`] / [`Ticket::try_wait`] redeem a submission for its
//!   [`CoverResult`], which is **bit-identical** to what a standalone
//!   [`MwhvcSolver::solve`](crate::MwhvcSolver::solve) returns for the
//!   same instance and ε.
//! * [`shutdown`](SolveService::shutdown) closes the queue (subsequent
//!   submissions fail with [`SubmitError::ShutDown`]), **drains** every
//!   queued and in-flight solve, and joins the workers — every ticket
//!   issued before the shutdown still resolves.
//!
//! # Zero-copy instances
//!
//! The service threads the `Arc<Hypergraph>` through to the solver layer
//! untouched: the queue stores the `Arc` handle, the worker borrows
//! `&Hypergraph` out of it for the solve, and no code path clones the
//! underlying instance data. `dcover_hypergraph::clone_count()` observes
//! deep clones process-wide, and `tests/zero_copy.rs` pins this guarantee.
//!
//! # Error isolation
//!
//! A bad instance (oversized weights, tightened limits) resolves its own
//! ticket with an `Err` and nothing else; even a *panicking* solve task is
//! confined to its ticket ([`SolveError::Panicked`]) — the pool worker
//! survives and every other submission proceeds.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use dcover_core::SolveService;
//! use dcover_hypergraph::from_weighted_edge_lists;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = SolveService::with_epsilon(0.5, 2)?;
//! let g = Arc::new(from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]])?);
//! // Submit as requests arrive; redeem tickets whenever convenient.
//! let a = service.submit(Arc::clone(&g), 0.5)?;
//! let b = service.submit(Arc::clone(&g), 1.0)?;
//! assert_eq!(a.wait()?.weight, 1);
//! assert_eq!(b.wait()?.weight, 1);
//! service.shutdown();
//! assert!(service.submit(g, 0.5).is_err());
//! # Ok(())
//! # }
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dcover_congest::{EngineArena, SimPool, TaskQueue, TaskTicket, TrySubmitError};
use dcover_hypergraph::Hypergraph;

use crate::error::SolveError;
use crate::params::MwhvcConfig;
use crate::protocol::MwhvcNode;
use crate::solver::{CoverResult, MwhvcSolver};

/// Why a submission was refused at the service door. (Problems *inside*
/// the solve — bad weights, limit violations — are not submission errors;
/// they resolve the ticket with a [`SolveError`] instead.)
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded submission queue is at capacity
    /// ([`try_submit`](SolveService::try_submit) only — the blocking
    /// [`submit`](SolveService::submit) waits instead). Retry later, shed
    /// the request, or fall back to blocking submission.
    Backpressure {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The service has been [shut down](SolveService::shutdown); no new
    /// work is accepted.
    ShutDown,
    /// The request itself is invalid (e.g. ε outside `(0, 1]`); nothing
    /// was enqueued.
    Invalid(SolveError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Backpressure { capacity } => {
                write!(f, "submission queue is full ({capacity} waiting)")
            }
            SubmitError::ShutDown => write!(f, "solve service has been shut down"),
            SubmitError::Invalid(e) => write!(f, "invalid submission: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

/// A pending solve: redeem with [`wait`](Ticket::wait) (blocking) or
/// [`try_wait`](Ticket::try_wait) (polling). Tickets outlive the service
/// — shutdown drains the queue, so every issued ticket resolves.
#[derive(Debug)]
pub struct Ticket {
    seq: u64,
    inner: TaskTicket<Result<CoverResult, SolveError>>,
}

impl Ticket {
    /// The submission's sequence id: unique per service, 0-based, and
    /// monotone in submission order *as observed by each submitting
    /// thread* — which for a single-threaded ingestion loop (the `dcover
    /// serve` shape) is exactly arrival order, letting a caller that
    /// redeems tickets in completion order re-associate results with
    /// requests. When several threads submit concurrently, ids stay
    /// unique but the interleaving between threads is unspecified (the
    /// id is drawn from an atomic counter after the enqueue).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether the solve has finished (a `wait` would not block).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Blocks until the solve finishes and returns its result.
    ///
    /// # Errors
    ///
    /// Whatever [`MwhvcSolver::solve`] would return for this instance, or
    /// [`SolveError::Panicked`] if the solve task panicked on its worker.
    pub fn wait(self) -> Result<CoverResult, SolveError> {
        match self.inner.wait() {
            Ok(result) => result,
            Err(payload) => Err(SolveError::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        }
    }

    /// Non-blocking redemption: `Ok(result)` if the solve has finished,
    /// `Err(self)` (the ticket, still valid) if it is still queued or
    /// running.
    #[allow(clippy::missing_errors_doc)] // Err is "not ready", not a failure
    pub fn try_wait(self) -> Result<Result<CoverResult, SolveError>, Ticket> {
        let seq = self.seq;
        match self.inner.try_wait() {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(payload)) => Ok(Err(SolveError::Panicked {
                message: panic_message(payload.as_ref()),
            })),
            Err(inner) => Err(Ticket { seq, inner }),
        }
    }
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// An asynchronous MWHVC solve service: one persistent worker pool behind
/// a bounded submission queue. See the module docs for the serving model.
#[derive(Debug)]
pub struct SolveService {
    base: MwhvcConfig,
    threads: usize,
    queue_capacity: usize,
    /// The pool; `None` after [`shutdown`](Self::shutdown), transiently
    /// while a [`SolveSession`](crate::SolveSession) borrows it for a
    /// chunk-parallel solve, or after a poisoned solve destroyed it (a
    /// node-program panic unwinds through the borrowed pool). Submission
    /// handles are derived from the *current* pool per call — see
    /// [`current_queue`](Self::current_queue) — so the service revives
    /// itself after a poisoning instead of going permanently stale.
    pool: Mutex<Option<SimPool<MwhvcNode>>>,
    /// Next sequence id.
    seq: AtomicU64,
    /// Cleared by [`shutdown`](Self::shutdown): refuse new submissions.
    open: AtomicBool,
}

impl SolveService {
    /// Starts a service with `threads` persistent workers and the default
    /// submission-queue capacity of `4 × threads` waiting instances.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(config: MwhvcConfig, threads: usize) -> Self {
        Self::with_queue_capacity(config, threads, 4 * threads.max(1))
    }

    /// Starts a service whose bounded queue holds at most `capacity`
    /// **waiting** instances (instances a worker has started solving no
    /// longer count). A full queue blocks [`submit`](Self::submit) and
    /// makes [`try_submit`](Self::try_submit) report
    /// [`SubmitError::Backpressure`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `capacity == 0`.
    #[must_use]
    pub fn with_queue_capacity(config: MwhvcConfig, threads: usize, capacity: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let pool = SimPool::with_queue_capacity(threads, capacity);
        Self {
            base: config,
            threads,
            queue_capacity: capacity,
            pool: Mutex::new(Some(pool)),
            seq: AtomicU64::new(0),
            open: AtomicBool::new(true),
        }
    }

    /// Starts a service with the given base ε and default settings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_epsilon(epsilon: f64, threads: usize) -> Result<Self, SolveError> {
        Ok(Self::new(MwhvcConfig::new(epsilon)?, threads))
    }

    /// The service's base configuration (per-submission ε overrides it;
    /// every other setting — α policy, variant, budget, trace, round
    /// limit — is inherited by every solve).
    #[must_use]
    pub fn config(&self) -> &MwhvcConfig {
        &self.base
    }

    /// Number of persistent worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The submission queue's capacity (waiting instances).
    #[must_use]
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Number of submissions currently waiting in the queue (excludes
    /// solves a worker has already started; 0 after shutdown).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.pool
            .lock()
            .expect("pool mutex")
            .as_ref()
            .map_or(0, |pool| pool.queue().queued())
    }

    /// Whether the service still accepts submissions.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    /// Submits one instance with the given ε, **blocking while the queue
    /// is at capacity**, and returns the ticket for its result. The
    /// `Arc<Hypergraph>` payload is shared, never deep-copied — submit the
    /// same instance any number of times for the cost of a refcount.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for a bad ε, [`SubmitError::ShutDown`]
    /// after [`shutdown`](Self::shutdown). (Never
    /// [`SubmitError::Backpressure`] — this variant waits instead.)
    pub fn submit(&self, g: Arc<Hypergraph>, epsilon: f64) -> Result<Ticket, SubmitError> {
        let solver = self.solver_for(epsilon)?;
        self.submit_task(move |arena| solver.solve_with_arena(&g, arena))
    }

    /// Non-blocking submission: enqueues only if a queue slot is free
    /// right now. The `Arc` handle is cloned (a refcount increment — the
    /// instance data is never copied), so the caller keeps its handle for
    /// a later retry.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Backpressure`] when the queue is full, otherwise as
    /// [`submit`](Self::submit).
    pub fn try_submit(&self, g: &Arc<Hypergraph>, epsilon: f64) -> Result<Ticket, SubmitError> {
        let solver = self.solver_for(epsilon)?;
        let g = Arc::clone(g);
        self.try_submit_task(move |arena| solver.solve_with_arena(&g, arena))
    }

    /// Gracefully shuts the service down: close the queue (subsequent
    /// submissions fail with [`SubmitError::ShutDown`]), **drain** every
    /// queued and in-flight solve, and join the workers. Every ticket
    /// issued before this call resolves by the time `shutdown` returns.
    /// Idempotent.
    pub fn shutdown(&self) {
        self.open.store(false, Ordering::Release);
        let pool = self.pool.lock().expect("pool mutex").take();
        // Dropping the pool performs the drain-and-join.
        drop(pool);
    }

    /// The per-request solver: base configuration with `epsilon` swapped
    /// in.
    fn solver_for(&self, epsilon: f64) -> Result<MwhvcSolver, SubmitError> {
        let config = self
            .base
            .clone()
            .with_epsilon(epsilon)
            .map_err(SubmitError::Invalid)?;
        Ok(MwhvcSolver::new(config))
    }

    /// A submission handle to the **current** pool's queue, reviving the
    /// pool if it is gone while the service is still open (a node-program
    /// panic during a chunk-parallel solve unwinds through the borrowed
    /// pool and destroys it — the service must not stay wedged). The
    /// handle is cloned out under the lock; the potentially-blocking
    /// submit itself runs with no service lock held.
    fn current_queue(&self) -> Result<TaskQueue<MwhvcNode>, SubmitError> {
        let mut slot = self.pool.lock().expect("pool mutex");
        // Checked under the pool lock so a revive cannot race a
        // concurrent shutdown's pool takedown.
        if !self.is_open() {
            return Err(SubmitError::ShutDown);
        }
        if let Some(pool) = slot.as_ref() {
            return Ok(pool.queue());
        }
        let pool = SimPool::with_queue_capacity(self.threads, self.queue_capacity);
        let queue = pool.queue();
        *slot = Some(pool);
        Ok(queue)
    }

    /// Blocking enqueue of an arbitrary solve task (the typed `submit` is
    /// a thin wrapper; tests inject gated or panicking tasks here).
    fn submit_task<F>(&self, f: F) -> Result<Ticket, SubmitError>
    where
        F: FnOnce(&mut EngineArena<MwhvcNode>) -> Result<CoverResult, SolveError> + Send + 'static,
    {
        let inner = self
            .current_queue()?
            .submit(f)
            .map_err(|_| SubmitError::ShutDown)?;
        Ok(self.ticket(inner))
    }

    /// Non-blocking enqueue of an arbitrary solve task.
    fn try_submit_task<F>(&self, f: F) -> Result<Ticket, SubmitError>
    where
        F: FnOnce(&mut EngineArena<MwhvcNode>) -> Result<CoverResult, SolveError> + Send + 'static,
    {
        let inner = self.current_queue()?.try_submit(f).map_err(|e| match e {
            TrySubmitError::Full => SubmitError::Backpressure {
                capacity: self.queue_capacity,
            },
            TrySubmitError::Closed => SubmitError::ShutDown,
        })?;
        Ok(self.ticket(inner))
    }

    fn ticket(&self, inner: TaskTicket<Result<CoverResult, SolveError>>) -> Ticket {
        Ticket {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            inner,
        }
    }

    /// Borrows the worker pool for a chunk-parallel single-instance solve
    /// (see [`SolveSession::solve`](crate::SolveSession::solve)). Queued
    /// task submissions keep flowing to the workers meanwhile — round
    /// jobs take priority in the shared queue. Rebuilds the pool if it is
    /// gone (after a shutdown the rebuilt pool serves round jobs only;
    /// the closed submission queue stays closed).
    pub(crate) fn take_pool(&self) -> SimPool<MwhvcNode> {
        self.pool
            .lock()
            .expect("pool mutex")
            .take()
            .unwrap_or_else(|| SimPool::with_queue_capacity(self.threads, self.queue_capacity))
    }

    /// Returns the pool after a chunk-parallel solve.
    pub(crate) fn put_pool(&self, pool: SimPool<MwhvcNode>) {
        *self.pool.lock().expect("pool mutex") = Some(pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_hypergraph::from_weighted_edge_lists;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Condvar;

    fn tiny() -> Arc<Hypergraph> {
        Arc::new(from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]]).unwrap())
    }

    /// A gate the injected tasks block on, to pin queue states
    /// deterministically.
    struct Gate(Mutex<bool>, Condvar);

    impl Gate {
        fn new() -> Arc<Self> {
            Arc::new(Gate(Mutex::new(false), Condvar::new()))
        }
        fn release(&self) {
            *self.0.lock().unwrap() = true;
            self.1.notify_all();
        }
        fn wait(&self) {
            let mut open = self.0.lock().unwrap();
            while !*open {
                open = self.1.wait(open).unwrap();
            }
        }
    }

    /// Occupies every worker with a gated task and waits until all of
    /// them have been *picked up* (queue drained), so subsequent
    /// submissions fill the queue deterministically.
    fn occupy_workers(service: &SolveService, gate: &Arc<Gate>) -> Vec<Ticket> {
        let tickets: Vec<Ticket> = (0..service.threads())
            .map(|_| {
                let gate = Arc::clone(gate);
                service
                    .submit_task(move |_arena| {
                        gate.wait();
                        Ok(CoverResult::empty())
                    })
                    .unwrap()
            })
            .collect();
        while service.queued() > 0 {
            std::thread::yield_now();
        }
        tickets
    }

    #[test]
    fn backpressure_is_reported_without_blocking() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 2);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let q1 = service.try_submit(&g, 0.5).unwrap();
        let q2 = service.try_submit(&g, 0.5).unwrap();
        let start = std::time::Instant::now();
        let err = service.try_submit(&g, 0.5).expect_err("queue is full");
        assert_eq!(err, SubmitError::Backpressure { capacity: 2 });
        assert!(
            start.elapsed() < std::time::Duration::from_secs(1),
            "try_submit must not block"
        );
        // The rejected submission consumed no sequence id slot in the
        // queue; releasing the gate lets everything finish.
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        assert!(q1.wait().unwrap().cover.is_cover_of(&g));
        assert!(q2.wait().unwrap().cover.is_cover_of(&g));
    }

    #[test]
    fn shutdown_drains_in_flight_tickets() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 8);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let queued: Vec<Ticket> = (0..3)
            .map(|_| service.submit(Arc::clone(&g), 0.5).unwrap())
            .collect();
        // Release the gate from another thread while shutdown drains.
        let releaser = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(20));
                gate.release();
            })
        };
        service.shutdown();
        releaser.join().unwrap();
        assert!(!service.is_open());
        // Every ticket issued before shutdown resolved during the drain.
        for t in busy {
            assert!(t.is_done(), "gated ticket drained");
            t.wait().unwrap();
        }
        for t in queued {
            assert!(t.is_done(), "queued ticket drained");
            assert!(t.wait().unwrap().cover.is_cover_of(&g));
        }
        // And the door is closed now.
        assert_eq!(
            service.submit(Arc::clone(&g), 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
        assert_eq!(
            service.try_submit(&g, 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
        // Idempotent.
        service.shutdown();
    }

    #[test]
    fn panicking_task_fails_only_its_own_ticket() {
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let g = tiny();
        let before = service.submit(Arc::clone(&g), 0.5).unwrap();
        let bomb = service
            .submit_task(|_arena| panic!("instance 7 exploded"))
            .unwrap();
        let after = service.submit(Arc::clone(&g), 0.5).unwrap();
        let err = bomb.wait().expect_err("panic surfaces as SolveError");
        match err {
            SolveError::Panicked { message } => {
                assert!(message.contains("instance 7 exploded"), "got: {message}")
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert!(before.wait().unwrap().cover.is_cover_of(&g));
        assert!(after.wait().unwrap().cover.is_cover_of(&g));
        // The service keeps serving afterwards.
        assert!(service.submit(g, 0.5).unwrap().wait().is_ok());
    }

    #[test]
    fn results_are_bit_identical_to_standalone_solver() {
        let mut rng = StdRng::seed_from_u64(77);
        let service = SolveService::with_epsilon(0.5, 3).unwrap();
        for i in 0..10 {
            let g = Arc::new(random_uniform(
                &RandomUniform {
                    n: 20 + i * 5,
                    m: 40 + i * 11,
                    rank: 2 + i % 3,
                    weights: WeightDist::Uniform { min: 1, max: 9 },
                },
                &mut rng,
            ));
            let eps = [0.25, 0.5, 1.0][i % 3];
            let ticket = service.submit(Arc::clone(&g), eps).unwrap();
            let served = ticket.wait().unwrap();
            let solo = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
            assert_eq!(served.cover, solo.cover, "instance {i}");
            assert_eq!(served.duals, solo.duals, "instance {i}");
            assert_eq!(served.levels, solo.levels, "instance {i}");
            assert_eq!(served.report, solo.report, "instance {i}");
        }
    }

    #[test]
    fn per_submission_epsilon_overrides_base() {
        let service = SolveService::with_epsilon(1.0, 2).unwrap();
        let g = tiny();
        let tight = service
            .submit(Arc::clone(&g), 0.05)
            .unwrap()
            .wait()
            .unwrap();
        let solo = MwhvcSolver::with_epsilon(0.05).unwrap().solve(&g).unwrap();
        assert_eq!(tight.duals, solo.duals);
        assert_eq!(tight.report, solo.report);
        // Invalid ε is refused at the door.
        assert!(matches!(
            service.submit(Arc::clone(&g), 0.0),
            Err(SubmitError::Invalid(SolveError::InvalidEpsilon { .. }))
        ));
        assert!(matches!(
            service.try_submit(&g, 7.0),
            Err(SubmitError::Invalid(SolveError::InvalidEpsilon { .. }))
        ));
    }

    #[test]
    fn bad_instance_resolves_its_own_ticket_only() {
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        let good = tiny();
        let oversized = Arc::new(from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap());
        let a = service.submit(Arc::clone(&good), 0.5).unwrap();
        let b = service.submit(oversized, 0.5).unwrap();
        let c = service.submit(Arc::clone(&good), 0.5).unwrap();
        assert!(a.wait().is_ok());
        assert!(matches!(
            b.wait(),
            Err(SolveError::WeightTooLarge { vertex: 0, .. })
        ));
        assert!(c.wait().is_ok());
    }

    #[test]
    fn sequence_ids_count_successful_submissions() {
        let gate = Gate::new();
        let service = SolveService::with_queue_capacity(MwhvcConfig::new(0.5).unwrap(), 1, 1);
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let t1 = service.try_submit(&g, 0.5).unwrap();
        assert!(service.try_submit(&g, 0.5).is_err()); // rejected: no seq id
        gate.release();
        let t2 = service.submit(Arc::clone(&g), 0.5).unwrap();
        assert_eq!(t1.seq(), busy.len() as u64);
        assert_eq!(t2.seq(), t1.seq() + 1);
        for t in busy {
            t.wait().unwrap();
        }
        t1.wait().unwrap();
        t2.wait().unwrap();
    }

    #[test]
    fn service_revives_after_a_poisoned_chunk_parallel_solve() {
        // A node-program panic inside SolveSession::solve unwinds through
        // the borrowed pool and destroys it. Replicate that (take the
        // pool out and drop it without putting one back): the service
        // must revive on the next submission, not stay wedged rejecting
        // everything while is_open() still says true.
        let service = SolveService::with_epsilon(0.5, 2).unwrap();
        drop(service.take_pool());
        assert!(service.is_open());
        assert_eq!(service.queued(), 0);
        let g = tiny();
        let t = service.submit(Arc::clone(&g), 0.5).unwrap();
        assert!(t.wait().unwrap().cover.is_cover_of(&g));
        let t = service.try_submit(&g, 0.5).unwrap();
        assert!(t.wait().is_ok());
        // Shutdown still closes the revived pool for good.
        service.shutdown();
        assert_eq!(
            service.submit(g, 0.5).expect_err("closed"),
            SubmitError::ShutDown
        );
    }

    #[test]
    fn try_wait_polls_until_done() {
        let gate = Gate::new();
        let service = SolveService::with_epsilon(0.5, 1).unwrap();
        let busy = occupy_workers(&service, &gate);
        let g = tiny();
        let mut ticket = service.submit(Arc::clone(&g), 0.5).unwrap();
        ticket = ticket
            .try_wait()
            .expect_err("still gated behind the worker");
        assert!(!ticket.is_done());
        gate.release();
        for t in busy {
            t.wait().unwrap();
        }
        // The solve is tiny; poll until it lands.
        loop {
            match ticket.try_wait() {
                Ok(result) => {
                    assert!(result.unwrap().cover.is_cover_of(&g));
                    break;
                }
                Err(t) => {
                    ticket = t;
                    std::thread::yield_now();
                }
            }
        }
    }
}
