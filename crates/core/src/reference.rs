//! Centralized reference implementation of Algorithm MWHVC.
//!
//! This is a loop-for-loop port of §3.2 with the *same phase structure and
//! the same floating-point operations* as the distributed protocol, so a
//! distributed run and a reference run on the same instance produce
//! identical covers, levels, duals, and iteration counts — the
//! cross-validation tests assert exactly that. It is also much faster (no
//! message shuffling), so large parameter sweeps in the benchmark harness
//! use it once equivalence is established, and it feeds full-state
//! [`IterationSnapshot`](crate::IterationSnapshot)s to
//! [`Observer`](crate::Observer)s for invariant checking.

use dcover_hypergraph::{Cover, Hypergraph};

use crate::error::SolveError;
use crate::observer::{IterationSnapshot, Observer};
use crate::params::{beta, z_levels, MwhvcConfig, Variant};
use crate::protocol::{
    apply_halvings, apply_raise, initial_bid, norm_weight_less, pow2_neg, should_level_up,
};

/// Result of a reference (centralized) run. Field meanings match
/// [`CoverResult`](crate::CoverResult) minus the communication report.
#[derive(Clone, Debug)]
pub struct ReferenceResult {
    /// The computed vertex cover.
    pub cover: Cover,
    /// Final `δ(e)` per edge.
    pub duals: Vec<f64>,
    /// Final `ℓ(v)` per vertex.
    pub levels: Vec<u32>,
    /// `w(C)`.
    pub weight: u64,
    /// `Σ_e δ(e)`.
    pub dual_total: f64,
    /// Iterations executed (iteration 0 = initialization not counted).
    pub iterations: u64,
}

impl ReferenceResult {
    /// Certified upper bound on the approximation ratio (see
    /// [`CoverResult::ratio_upper_bound`](crate::CoverResult::ratio_upper_bound)).
    #[must_use]
    pub fn ratio_upper_bound(&self) -> f64 {
        if self.weight == 0 {
            1.0
        } else {
            self.weight as f64 / self.dual_total
        }
    }
}

/// Runs Algorithm MWHVC centrally, invoking `observer` after initialization
/// and after every iteration.
///
/// # Errors
///
/// Returns [`SolveError::WeightTooLarge`] if a weight exceeds 2⁵³ (same
/// precondition as the distributed solver). Unlike the distributed path
/// there is no simulation that can fail.
pub fn solve_reference(
    g: &Hypergraph,
    config: &MwhvcConfig,
    observer: &mut dyn Observer,
) -> Result<ReferenceResult, SolveError> {
    for v in g.vertices() {
        let w = g.weight(v);
        if w > (1 << 53) {
            return Err(SolveError::WeightTooLarge {
                vertex: v.index(),
                weight: w,
            });
        }
    }

    let n = g.n();
    let m = g.m();
    let f = g.rank().max(1);
    let eps = config.epsilon();
    let b = beta(f, eps);
    let z = z_levels(f, eps);
    let variant = config.variant();

    // ---- per-edge state ----
    let mut bid = vec![0.0f64; m];
    let mut dual = vec![0.0f64; m];
    let mut covered = vec![false; m];
    let mut alpha = vec![2u32; m];
    // ---- per-vertex state ----
    let mut level = vec![0u32; n];
    let mut dual_sum = vec![0.0f64; n];
    let mut in_cover = vec![false; n];
    let mut active: Vec<bool> = g.vertices().map(|v| g.degree(v) > 0).collect();
    let mut live_deg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();

    // ---- iteration 0 (§3.2 step 2) ----
    for e in g.edges() {
        let members = g.edge(e);
        let mut best = (g.weight(members[0]), g.degree(members[0]) as u64);
        let mut local_delta = 0u64;
        for &v in members {
            let cand = (g.weight(v), g.degree(v) as u64);
            local_delta = local_delta.max(cand.1);
            if norm_weight_less(cand.0, cand.1, best.0, best.1) {
                best = cand;
            }
        }
        bid[e.index()] = initial_bid(best.0, best.1);
        dual[e.index()] = bid[e.index()];
        alpha[e.index()] = config.alpha().resolve(
            f,
            eps,
            u32::try_from(local_delta).unwrap_or(u32::MAX),
            g.max_degree(),
        );
    }
    // Vertices absorb δ0 in port (= ascending edge id) order, matching the
    // distributed round-2 accumulation order exactly.
    for v in g.vertices() {
        for &e in g.incident_edges(v) {
            dual_sum[v.index()] += dual[e.index()];
        }
    }
    let mut covered_count = 0usize;
    let mut iterations = 0u64;
    let mut prev_dual_sum = dual_sum.clone();

    emit(
        observer,
        g,
        0,
        &level,
        &dual,
        &bid,
        &covered,
        &in_cover,
        &active,
        &dual_sum,
        &prev_dual_sum,
    );

    // ---- iterations i = 1, 2, … ----
    while covered_count < m {
        iterations += 1;
        prev_dual_sum.copy_from_slice(&dual_sum);

        // V1 / step 3a: simultaneous β-tightness checks.
        let joining: Vec<usize> = (0..n)
            .filter(|&vi| {
                active[vi] && !in_cover[vi] && dual_sum[vi] >= (1.0 - b) * g.weights()[vi] as f64
            })
            .collect();
        for &vi in &joining {
            in_cover[vi] = true;
            active[vi] = false;
        }

        // E1 / step 3b: edges with a cover member terminate covered.
        if !joining.is_empty() {
            for e in g.edges() {
                if !covered[e.index()] && g.edge(e).iter().any(|&v| in_cover[v.index()]) {
                    covered[e.index()] = true;
                    covered_count += 1;
                    for &v in g.edge(e) {
                        live_deg[v.index()] -= 1;
                    }
                }
            }
        }

        // V1 / step 3d: level increments for every still-active vertex
        // (vertices whose last edge was just covered still level up — they
        // only learn of the coverage in phase V2, matching the protocol).
        let mut incs = vec![0u32; n];
        for vi in 0..n {
            if !active[vi] {
                continue;
            }
            let w = g.weights()[vi] as f64;
            while should_level_up(dual_sum[vi], w, level[vi]) {
                level[vi] += 1;
                incs[vi] += 1;
                debug_assert!(level[vi] <= z, "Claim 4 violated");
                if level[vi] > z {
                    break;
                }
            }
        }

        // E1 / step 3(d)ii: halve bids of uncovered edges.
        for e in g.edges() {
            if covered[e.index()] {
                continue;
            }
            let h: u32 = g.edge(e).iter().map(|&v| incs[v.index()]).sum();
            if h > 0 {
                bid[e.index()] = apply_halvings(bid[e.index()], h);
            }
        }

        // V2 / step 3c: vertices with no uncovered edges terminate.
        for vi in 0..n {
            if active[vi] && live_deg[vi] == 0 {
                active[vi] = false;
            }
        }
        if covered_count == m {
            emit(
                observer,
                g,
                iterations,
                &level,
                &dual,
                &bid,
                &covered,
                &in_cover,
                &active,
                &dual_sum,
                &prev_dual_sum,
            );
            break;
        }

        // V2 / step 3e: raise/stuck votes.
        let mut raise = vec![false; n];
        for v in g.vertices() {
            let vi = v.index();
            if !active[vi] {
                continue;
            }
            let mut alpha_max = 2u32;
            let mut bid_sum = 0.0f64;
            for &e in g.incident_edges(v) {
                if !covered[e.index()] {
                    alpha_max = alpha_max.max(alpha[e.index()]);
                    bid_sum += bid[e.index()];
                }
            }
            let w = g.weights()[vi] as f64;
            raise[vi] = bid_sum <= pow2_neg(level[vi] + 1) * w / f64::from(alpha_max);
        }

        // E2 / step 3f: unanimous raises multiply; everyone pays the bid.
        for e in g.edges() {
            let ei = e.index();
            if covered[ei] {
                continue;
            }
            if g.edge(e).iter().all(|&v| raise[v.index()]) {
                bid[ei] = apply_raise(bid[ei], alpha[ei]);
            }
            let add = match variant {
                Variant::Standard => bid[ei],
                Variant::HalfBid => bid[ei] / 2.0,
            };
            dual[ei] += add;
            for &v in g.edge(e) {
                dual_sum[v.index()] += add;
            }
        }

        emit(
            observer,
            g,
            iterations,
            &level,
            &dual,
            &bid,
            &covered,
            &in_cover,
            &active,
            &dual_sum,
            &prev_dual_sum,
        );
    }

    let cover = Cover::from_ids(n, g.vertices().filter(|v| in_cover[v.index()]));
    debug_assert!(m == 0 || cover.is_cover_of(g));
    let weight = cover.weight(g);
    let dual_total = dual.iter().sum();
    Ok(ReferenceResult {
        cover,
        duals: dual,
        levels: level,
        weight,
        dual_total,
        iterations,
    })
}

#[allow(clippy::too_many_arguments)]
fn emit(
    observer: &mut dyn Observer,
    g: &Hypergraph,
    iteration: u64,
    levels: &[u32],
    duals: &[f64],
    bids: &[f64],
    edge_covered: &[bool],
    in_cover: &[bool],
    active: &[bool],
    dual_sums: &[f64],
    prev_dual_sums: &[f64],
) {
    observer.on_iteration(
        g,
        &IterationSnapshot {
            iteration,
            levels,
            duals,
            bids,
            edge_covered,
            in_cover,
            active,
            dual_sums,
            prev_dual_sums,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{HistoryObserver, NullObserver};
    use crate::solver::MwhvcSolver;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use dcover_hypergraph::{from_edge_lists, from_weighted_edge_lists};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reference_solves_triangle() {
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2], &[2, 0]]).unwrap();
        let cfg = MwhvcConfig::new(1.0).unwrap();
        let r = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
        assert!(r.cover.is_cover_of(&g));
        assert!(r.ratio_upper_bound() <= 3.0 + 1e-9);
    }

    #[test]
    fn reference_matches_distributed_exactly() {
        let mut rng = StdRng::seed_from_u64(31);
        for (f, eps, wmax) in [(2usize, 1.0, 1u64), (3, 0.5, 40), (5, 0.25, 1000)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 45,
                    m: 110,
                    rank: f,
                    weights: WeightDist::Uniform { min: 1, max: wmax },
                },
                &mut rng,
            );
            let cfg = MwhvcConfig::new(eps).unwrap();
            let dist = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
            let refr = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
            assert_eq!(dist.cover, refr.cover, "cover f={f} eps={eps}");
            assert_eq!(dist.levels, refr.levels, "levels f={f} eps={eps}");
            assert_eq!(dist.duals, refr.duals, "duals f={f} eps={eps}");
            assert_eq!(dist.iterations, refr.iterations, "iters f={f} eps={eps}");
        }
    }

    #[test]
    fn observer_sees_monotone_progress() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = random_uniform(
            &RandomUniform {
                n: 30,
                m: 70,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 8 },
            },
            &mut rng,
        );
        let cfg = MwhvcConfig::new(0.5).unwrap();
        let mut h = HistoryObserver::default();
        let r = solve_reference(&g, &cfg, &mut h).unwrap();
        assert_eq!(h.history.last().unwrap().iteration, r.iterations);
        // Duals, coverage, and levels never decrease between snapshots.
        for pair in h.history.windows(2) {
            assert!(pair[1].dual_total >= pair[0].dual_total - 1e-12);
            assert!(pair[1].covered_edges >= pair[0].covered_edges);
            assert!(pair[1].cover_size >= pair[0].cover_size);
            assert!(pair[1].max_level >= pair[0].max_level);
            assert!(pair[1].active_vertices <= pair[0].active_vertices);
        }
    }

    #[test]
    fn edgeless_instance() {
        let g = from_weighted_edge_lists(&[2, 3], &[]).unwrap();
        let cfg = MwhvcConfig::new(0.5).unwrap();
        let r = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
        assert!(r.cover.is_empty());
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn halfbid_levels_rise_at_most_one_per_iteration() {
        // Corollary 21: with the Appendix C update no vertex climbs more
        // than one level per iteration.
        #[derive(Default)]
        struct LevelWatcher {
            prev: Vec<u32>,
            max_jump: u32,
        }
        impl Observer for LevelWatcher {
            fn on_iteration(&mut self, _g: &Hypergraph, s: &IterationSnapshot<'_>) {
                if !self.prev.is_empty() {
                    for (a, b) in self.prev.iter().zip(s.levels) {
                        self.max_jump = self.max_jump.max(b - a);
                    }
                }
                self.prev = s.levels.to_vec();
            }
        }
        let mut rng = StdRng::seed_from_u64(33);
        let g = random_uniform(
            &RandomUniform {
                n: 40,
                m: 120,
                rank: 4,
                weights: WeightDist::Uniform { min: 1, max: 30 },
            },
            &mut rng,
        );
        let cfg = MwhvcConfig::new(0.3)
            .unwrap()
            .with_variant(Variant::HalfBid);
        let mut w = LevelWatcher::default();
        let r = solve_reference(&g, &cfg, &mut w).unwrap();
        assert!(r.cover.is_cover_of(&g));
        assert!(w.max_jump <= 1, "level jumped by {}", w.max_jump);
    }
}
