//! Error type for the MWHVC solver.

use std::error::Error;
use std::fmt;

use dcover_congest::SimError;
use dcover_hypergraph::DeltaError;

/// Error produced when configuring or running the solver.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// ε must lie in `(0, 1]`.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// A fixed α must be at least 2 (the bid growth factor of §3.2; any
    /// smaller value voids Theorem 8's termination argument).
    InvalidAlpha {
        /// The rejected multiplier.
        alpha: u32,
    },
    /// Theorem 9's constant γ must be a positive finite number.
    InvalidGamma {
        /// The rejected value.
        gamma: f64,
    },
    /// A warm state does not fit the instance it was applied to (wrong
    /// dual/level vector length, or a negative/non-finite dual).
    WarmMismatch {
        /// Description of what didn't line up.
        what: &'static str,
    },
    /// An instance delta could not be applied to its base instance.
    Delta(DeltaError),
    /// A vertex weight exceeds 2⁵³, beyond which `f64` dual arithmetic is no
    /// longer exact on integers. The paper assumes `W = poly(n)`, so this
    /// never binds on sensible instances.
    WeightTooLarge {
        /// Index of the offending vertex.
        vertex: usize,
        /// Its weight.
        weight: u64,
    },
    /// The underlying simulation failed: either the CONGEST bit budget was
    /// violated or the Theorem 8 round bound was exceeded — both indicate a
    /// bug (or a deliberately tightened limit).
    Sim(SimError),
    /// The solve task panicked on a worker of a
    /// [`SolveService`](crate::SolveService). The panic is confined to the
    /// one submission that caused it — every other ticket, and the service
    /// itself, keeps working.
    Panicked {
        /// Best-effort rendering of the panic payload.
        message: String,
    },
    /// The submission's deadline
    /// ([`SubmitOptions::deadline`](crate::SubmitOptions)) passed — either
    /// while it was still queued (the solve never ran) or mid-run (the
    /// solve stopped cooperatively at its next round boundary). Typed load
    /// management, not a solver failure — resubmit (or relax the deadline)
    /// if the result is still wanted.
    Expired {
        /// Time from submission until the ticket was discarded or the run
        /// stopped.
        waited: std::time::Duration,
    },
    /// The submission was abandoned via
    /// [`Ticket::cancel`](crate::Ticket::cancel): either discarded while
    /// still queued, or stopped cooperatively at the next round boundary
    /// if already running. Never a failure — the caller asked for it.
    Cancelled,
    /// The submission was handed to a [`SolveService`](crate::SolveService)
    /// that has already been [shut down](crate::SolveService::shutdown).
    ShutDown,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidEpsilon { value } => {
                write!(f, "epsilon must be in (0, 1], got {value}")
            }
            SolveError::InvalidAlpha { alpha } => {
                write!(f, "fixed alpha must be at least 2, got {alpha}")
            }
            SolveError::InvalidGamma { gamma } => {
                write!(f, "theorem 9 gamma must be positive and finite, got {gamma}")
            }
            SolveError::WarmMismatch { what } => {
                write!(f, "warm state does not fit the instance: {what}")
            }
            SolveError::Delta(e) => write!(f, "delta failed to apply: {e}"),
            SolveError::WeightTooLarge { vertex, weight } => write!(
                f,
                "vertex {vertex} has weight {weight} which exceeds 2^53; dual arithmetic would lose exactness"
            ),
            SolveError::Sim(e) => write!(f, "simulation failed: {e}"),
            SolveError::Panicked { message } => {
                write!(f, "solve task panicked on a service worker: {message}")
            }
            SolveError::Expired { waited } => {
                write!(
                    f,
                    "submission deadline expired {:.3} ms after submit (discarded in the queue or stopped at a round boundary)",
                    waited.as_secs_f64() * 1e3
                )
            }
            SolveError::Cancelled => {
                write!(f, "submission was cancelled by its caller")
            }
            SolveError::ShutDown => write!(f, "solve service has been shut down"),
        }
    }
}

impl Error for SolveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolveError::Sim(e) => Some(e),
            SolveError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for SolveError {
    fn from(e: SimError) -> Self {
        SolveError::Sim(e)
    }
}

impl From<DeltaError> for SolveError {
    fn from(e: DeltaError) -> Self {
        SolveError::Delta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SolveError::InvalidEpsilon { value: 2.0 };
        assert!(e.to_string().contains("(0, 1]"));
        let e = SolveError::WeightTooLarge {
            vertex: 3,
            weight: u64::MAX,
        };
        assert!(e.to_string().contains("2^53"));
        let inner = SimError::RoundLimit {
            limit: 5,
            active: 1,
        };
        let e = SolveError::from(inner);
        assert!(e.to_string().contains("round limit"));
        assert!(Error::source(&e).is_some());
    }
}
