//! Iteration-level instrumentation hooks.
//!
//! The distributed run keeps its state sharded across simulated nodes; for
//! whole-state inspection (invariant checking, convergence plots, debugging)
//! the [centralized reference implementation](crate::solve_reference) calls
//! an [`Observer`] after initialization and after every iteration with a
//! read-only [`IterationSnapshot`] of the full algorithm state.

use dcover_hypergraph::Hypergraph;

/// A read-only view of the full algorithm state after one iteration.
#[derive(Debug)]
pub struct IterationSnapshot<'a> {
    /// Iteration number (0 = after initialization).
    pub iteration: u64,
    /// Current level `ℓ(v)` per vertex.
    pub levels: &'a [u32],
    /// Current dual `δ(e)` per edge (frozen once covered).
    pub duals: &'a [f64],
    /// Current `bid(e)` per edge (meaningless once covered).
    pub bids: &'a [f64],
    /// Whether each edge is covered.
    pub edge_covered: &'a [bool],
    /// Whether each vertex has joined the cover C.
    pub in_cover: &'a [bool],
    /// Whether each vertex is still participating (not in C, has uncovered
    /// incident edges).
    pub active: &'a [bool],
    /// Current dual sum `Σ_{e∈E(v)} δ(e)` per vertex.
    pub dual_sums: &'a [f64],
    /// Dual sums as of the *start* of this iteration (i.e. `Σ δ_{i−1}`),
    /// the quantity Eq. (1) of Claim 2 sandwiches against the levels that
    /// were just updated. Equals `dual_sums` in the iteration-0 snapshot.
    pub prev_dual_sums: &'a [f64],
}

/// Observer of the reference run. Implementations must not assume snapshots
/// outlive the callback.
pub trait Observer {
    /// Called after initialization (iteration 0) and after each iteration.
    fn on_iteration(&mut self, g: &Hypergraph, snapshot: &IterationSnapshot<'_>);
}

/// An observer that does nothing (the default).
#[derive(Copy, Clone, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_iteration(&mut self, _g: &Hypergraph, _snapshot: &IterationSnapshot<'_>) {}
}

/// An observer that records one row per iteration — handy for convergence
/// plots and tests.
#[derive(Clone, Debug, Default)]
pub struct HistoryObserver {
    /// One entry per callback.
    pub history: Vec<IterationStats>,
}

/// Aggregate statistics of one iteration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct IterationStats {
    /// Iteration number (0 = initialization).
    pub iteration: u64,
    /// Edges covered so far.
    pub covered_edges: usize,
    /// Vertices in the cover so far.
    pub cover_size: usize,
    /// Sum of all duals.
    pub dual_total: f64,
    /// Maximum level over all vertices.
    pub max_level: u32,
    /// Vertices still participating.
    pub active_vertices: usize,
}

impl Observer for HistoryObserver {
    fn on_iteration(&mut self, _g: &Hypergraph, s: &IterationSnapshot<'_>) {
        self.history.push(IterationStats {
            iteration: s.iteration,
            covered_edges: s.edge_covered.iter().filter(|&&c| c).count(),
            cover_size: s.in_cover.iter().filter(|&&c| c).count(),
            dual_total: s.duals.iter().sum(),
            max_level: s.levels.iter().copied().max().unwrap_or(0),
            active_vertices: s.active.iter().filter(|&&a| a).count(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_hypergraph::from_edge_lists;

    #[test]
    fn history_observer_records() {
        let g = from_edge_lists(2, &[&[0, 1]]).unwrap();
        let snap = IterationSnapshot {
            iteration: 3,
            levels: &[1, 0],
            duals: &[0.25],
            bids: &[0.125],
            edge_covered: &[false],
            in_cover: &[false, false],
            active: &[true, true],
            dual_sums: &[0.25, 0.25],
            prev_dual_sums: &[0.25, 0.25],
        };
        let mut h = HistoryObserver::default();
        h.on_iteration(&g, &snap);
        assert_eq!(h.history.len(), 1);
        let row = h.history[0];
        assert_eq!(row.iteration, 3);
        assert_eq!(row.covered_edges, 0);
        assert_eq!(row.max_level, 1);
        assert_eq!(row.active_vertices, 2);
        assert!((row.dual_total - 0.25).abs() < 1e-12);
    }

    #[test]
    fn null_observer_is_callable() {
        let g = from_edge_lists(1, &[&[0]]).unwrap();
        let snap = IterationSnapshot {
            iteration: 0,
            levels: &[0],
            duals: &[0.5],
            bids: &[0.5],
            edge_covered: &[false],
            in_cover: &[false],
            active: &[true],
            dual_sums: &[0.5],
            prev_dual_sums: &[0.5],
        };
        NullObserver.on_iteration(&g, &snap);
    }
}
