//! Warm-start state: carrying a dual edge packing across instance
//! revisions.
//!
//! The algorithm's entire progress lives in its dual state — the edge
//! packing `δ` and the vertex levels `ℓ` (§3.1). Both survive small
//! instance changes almost untouched: duals are per-edge (so they map
//! through an [`InstanceDelta`](dcover_hypergraph::InstanceDelta)'s
//! surviving-edge-id mapping), and scaling a dual *down* can never break
//! another vertex's packing constraint, so any violation introduced by
//! removed edges or reduced weights is repaired by clamping. A
//! [`WarmState`] packages exactly that: one seeded dual per edge of the
//! *new* revision and one seeded level per vertex, ready for
//! [`MwhvcSolver::solve_warm`](crate::MwhvcSolver::solve_warm).
//!
//! Koufogiannakis–Young's covering/packing framework makes the same
//! observation for their sequential primal-dual schemes: dual increments
//! are monotone, so a feasible prior packing is a valid starting point.

use dcover_hypergraph::{DeltaOutcome, Hypergraph};

use crate::solver::CoverResult;

/// Relative slack below which a seeded packing violation is attributed to
/// floating-point drift rather than an actual instance change. Cold
/// results can exceed `Σδ ≤ w` by a few ULPs (the protocol's own
/// `LEVEL_SLACK` comparisons); clamping those would destroy the
/// bit-identity of an empty-delta warm start for no benefit — the
/// certificate checks packing with the much larger
/// [`DEFAULT_TOLERANCE`](crate::DEFAULT_TOLERANCE) anyway.
const PACKING_SLACK: f64 = 1e-12;

/// Seed state for a warm-started solve: one dual per hyperedge of the
/// instance being solved and one level per vertex, typically carried over
/// from a previous [`CoverResult`] through an instance delta.
///
/// # Examples
///
/// ```
/// use dcover_core::{MwhvcSolver, WarmState};
/// use dcover_hypergraph::{from_weighted_edge_lists, EdgeId, InstanceDelta, VertexId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]])?;
/// let solver = MwhvcSolver::with_epsilon(0.5)?;
/// let cold = solver.solve(&g)?;
///
/// // Revise the instance and re-solve from the previous dual state.
/// let delta = InstanceDelta {
///     add_edges: vec![vec![VertexId::new(0), VertexId::new(2)]],
///     ..InstanceDelta::empty()
/// };
/// let out = delta.apply(&g)?;
/// let warm = solver.solve_warm(&out.graph, &WarmState::for_delta(&cold, &out))?;
/// assert!(warm.cover.is_cover_of(&out.graph));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WarmState {
    duals: Vec<f64>,
    levels: Vec<u32>,
}

impl WarmState {
    /// Builds a warm state from raw parts: `duals[e]` per hyperedge of the
    /// instance to be solved, `levels[v]` per vertex. Used by report
    /// loaders (`dcover solve --warm-from`); library callers normally use
    /// [`from_result`](Self::from_result) or
    /// [`for_delta`](Self::for_delta).
    #[must_use]
    pub fn from_parts(duals: Vec<f64>, levels: Vec<u32>) -> Self {
        Self { duals, levels }
    }

    /// The warm state for re-solving the **same** instance: duals and
    /// levels carried over verbatim.
    #[must_use]
    pub fn from_result(prev: &CoverResult) -> Self {
        Self {
            duals: prev.duals.iter().map(|&d| sanitize(d)).collect(),
            levels: prev.levels.clone(),
        }
    }

    /// The warm state for solving a **revision**: surviving edges keep
    /// their dual (via [`DeltaOutcome::predecessor`]), inserted edges
    /// start at 0, and levels carry over (the vertex set is fixed across
    /// a delta).
    #[must_use]
    pub fn for_delta(prev: &CoverResult, outcome: &DeltaOutcome) -> Self {
        Self {
            duals: outcome
                .predecessor
                .iter()
                .map(|p| p.map_or(0.0, |old| sanitize(prev.duals[old.index()])))
                .collect(),
            levels: prev.levels.clone(),
        }
    }

    /// The seeded per-edge duals.
    #[must_use]
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// The seeded per-vertex levels.
    #[must_use]
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }
}

/// Treats never-written dual slots (NaN for edges of an empty result) as
/// zero so a warm state is always well-formed.
fn sanitize(d: f64) -> f64 {
    if d.is_finite() {
        d
    } else {
        0.0
    }
}

/// Clamps a warm seed to the invariants the protocol needs at round 2:
///
/// * **Packing feasibility** — wherever `Σ_{e∋v} δ(e) > w(v)` (removed
///   edges can't cause this, but reduced weights can), every incident
///   dual is scaled by the smallest factor over the vertex's violations,
///   restoring `Σ ≤ w` in one pass: scaling only ever *lowers* other
///   vertices' sums. Violations within [`PACKING_SLACK`] are left alone
///   (float drift, not instance change).
/// * **Claim 4** — levels are clamped to the new instance's `z` (a delta
///   can shrink the rank and with it `z`).
///
/// Everything else the protocol re-derives itself: the first V1 phase
/// raises any level made stale by the delta before the first dual
/// increment happens, exactly as the paper's step 3d would.
pub(crate) fn clamped_seed(g: &Hypergraph, warm: &WarmState, z: u32) -> (Vec<f64>, Vec<u32>) {
    let mut scale = vec![1.0f64; g.m()];
    let mut any = false;
    for v in g.vertices() {
        let w = g.weight(v) as f64;
        let sum: f64 = g
            .incident_edges(v)
            .iter()
            .map(|&e| warm.duals[e.index()])
            .sum();
        if sum > w * (1.0 + PACKING_SLACK) {
            any = true;
            let t = w / sum;
            for &e in g.incident_edges(v) {
                if scale[e.index()] > t {
                    scale[e.index()] = t;
                }
            }
        }
    }
    let duals = if any {
        warm.duals
            .iter()
            .zip(&scale)
            .map(|(&d, &t)| if t < 1.0 { d * t } else { d })
            .collect()
    } else {
        warm.duals.clone()
    };
    let levels = warm.levels.iter().map(|&l| l.min(z)).collect();
    (duals, levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcover_hypergraph::from_weighted_edge_lists;

    #[test]
    fn clamping_restores_packing_feasibility() {
        // Vertex 0 (weight 4) sees duals 3 + 3 = 6 > 4: both incident
        // edges scale by 4/6; vertex 1 (weight 10) stays feasible.
        let g = from_weighted_edge_lists(&[4, 10], &[&[0, 1], &[0, 1]]).unwrap();
        let warm = WarmState::from_parts(vec![3.0, 3.0], vec![0, 0]);
        let (duals, _) = clamped_seed(&g, &warm, 3);
        let sum: f64 = duals.iter().sum();
        assert!(sum <= 4.0 * (1.0 + 1e-9), "clamped to the tight weight");
        assert!((duals[0] - duals[1]).abs() < 1e-15, "scaled uniformly");
    }

    #[test]
    fn feasible_seeds_pass_through_bit_identically() {
        let g = from_weighted_edge_lists(&[4, 10], &[&[0, 1], &[0, 1]]).unwrap();
        let warm = WarmState::from_parts(vec![1.5, 2.5], vec![2, 1]);
        let (duals, levels) = clamped_seed(&g, &warm, 5);
        assert_eq!(duals, vec![1.5, 2.5]);
        assert_eq!(levels, vec![2, 1]);
    }

    #[test]
    fn levels_clamp_to_z() {
        let g = from_weighted_edge_lists(&[4], &[&[0]]).unwrap();
        let warm = WarmState::from_parts(vec![0.5], vec![9]);
        let (_, levels) = clamped_seed(&g, &warm, 4);
        assert_eq!(levels, vec![4]);
    }
}
