//! Algorithm parameters: ε, β, levels, the α policy, and the solver
//! configuration.
//!
//! Paper mapping (§3.1):
//!
//! * `ε ∈ (0, 1]` — approximation slack; the output is an `(f + ε)`-
//!   approximation.
//! * `β = ε / (f + ε)` — a vertex is *β-tight* when `Σ_{e∋v} δ(e) ≥
//!   (1−β)·w(v)`; β-tight vertices join the cover.
//! * `z = ⌈log₂(1/β)⌉` — the number of levels; no vertex ever reaches level
//!   `z` (Claim 4).
//! * `α ≥ 2` — the bid growth factor; Theorem 9 picks it from `Δ`, `f`, `ε`
//!   to obtain the optimal `O(log Δ / log log Δ)` bound.

use dcover_congest::{BitBudget, PartitionPolicy};

use crate::error::SolveError;

/// Computes `β = ε / (f + ε)` (paper §3.1).
///
/// # Panics
///
/// Panics if `f == 0` or `eps` is not in `(0, 1]`. User-facing entry
/// points never reach the panic: every solve path first runs
/// [`MwhvcConfig::validate`], which turns the same conditions into typed
/// [`SolveError`]s ([`try_beta`] is the checked form).
#[must_use]
pub fn beta(f: u32, eps: f64) -> f64 {
    assert!(f > 0, "rank must be positive");
    assert!(eps > 0.0 && eps <= 1.0, "epsilon must be in (0, 1]");
    eps / (f as f64 + eps)
}

/// Checked [`beta`]: rejects a bad ε as a typed error instead of
/// panicking (`f` is derived from the instance, never user input, and is
/// still asserted).
///
/// # Errors
///
/// Returns [`SolveError::InvalidEpsilon`] unless `0 < eps ≤ 1`.
pub fn try_beta(f: u32, eps: f64) -> Result<f64, SolveError> {
    if !(eps > 0.0 && eps <= 1.0) {
        return Err(SolveError::InvalidEpsilon { value: eps });
    }
    Ok(beta(f, eps))
}

/// Computes `z = ⌈log₂(1/β)⌉`, the level bound (paper §4.2). Note
/// `z = O(log(f/ε))`.
///
/// # Panics
///
/// Panics if `f == 0` or `eps` is not in `(0, 1]` (see [`beta`] on why
/// solve paths cannot reach this; [`try_z_levels`] is the checked form).
#[must_use]
pub fn z_levels(f: u32, eps: f64) -> u32 {
    let b = beta(f, eps);
    (1.0 / b).log2().ceil() as u32
}

/// Checked [`z_levels`].
///
/// # Errors
///
/// Returns [`SolveError::InvalidEpsilon`] unless `0 < eps ≤ 1`.
pub fn try_z_levels(f: u32, eps: f64) -> Result<u32, SolveError> {
    try_beta(f, eps)?;
    Ok(z_levels(f, eps))
}

/// How the bid multiplier `α` is chosen.
///
/// Correctness holds for any `α ≥ 2` (Theorem 8 bounds the iterations by
/// `O(log_α Δ + f·log(f/ε)·α)` for every such α); the policy only affects
/// round complexity. We restrict α to integers — rounding Theorem 9's real-
/// valued choice changes constants only.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum AlphaPolicy {
    /// A fixed global `α ≥ 2`.
    Fixed(u32),
    /// Theorem 9's choice computed from the *global* maximum degree `Δ`:
    /// `α = max(2, log Δ / (f·log(f/ε)·log log Δ))` when that quantity is at
    /// least `(log Δ)^{γ/2}`, else `α = 2`.
    Theorem9 {
        /// The constant `γ > 0` of Theorem 9 (the paper suggests 0.001).
        gamma: f64,
    },
    /// Theorem 9's choice computed per hyperedge from the *local* maximum
    /// degree `Δ(e) = max_{u∈e} |E(u)|` (Appendix B item 5) — removes the
    /// assumption that all nodes know `Δ`.
    LocalTheorem9 {
        /// The constant `γ > 0` of Theorem 9.
        gamma: f64,
    },
}

impl AlphaPolicy {
    /// The default policy: Theorem 9 with `γ = 0.001` on the global degree.
    #[must_use]
    pub fn theorem9() -> Self {
        AlphaPolicy::Theorem9 { gamma: 0.001 }
    }

    /// Validates the user-suppliable parameters of the policy, turning
    /// what [`resolve`](Self::resolve) would panic on into typed errors.
    /// Every solve entry point calls this (via [`MwhvcConfig::validate`])
    /// before any α is resolved, so a bad fixed α or γ from a config,
    /// CLI flag, or service submission surfaces as a [`SolveError`], never
    /// a panic on a service worker.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidAlpha`] for a fixed `α < 2` and
    /// [`SolveError::InvalidGamma`] for `γ ≤ 0`, NaN, or infinite γ.
    pub fn validate(&self) -> Result<(), SolveError> {
        match *self {
            AlphaPolicy::Fixed(a) => {
                if a < 2 {
                    return Err(SolveError::InvalidAlpha { alpha: a });
                }
            }
            AlphaPolicy::Theorem9 { gamma } | AlphaPolicy::LocalTheorem9 { gamma } => {
                if !(gamma > 0.0 && gamma.is_finite()) {
                    return Err(SolveError::InvalidGamma { gamma });
                }
            }
        }
        Ok(())
    }

    /// Resolves the multiplier for a hyperedge.
    ///
    /// `local_delta` is `Δ(e)` (local max degree over the edge's members);
    /// `global_delta` is the instance-wide `Δ`. Policies ignore whichever
    /// they don't use.
    ///
    /// # Panics
    ///
    /// Panics if a fixed α is `< 2`, if `γ ≤ 0`, if `f == 0`, or if `eps` is
    /// outside `(0, 1]`.
    #[must_use]
    pub fn resolve(&self, f: u32, eps: f64, local_delta: u32, global_delta: u32) -> u32 {
        match *self {
            AlphaPolicy::Fixed(a) => {
                assert!(a >= 2, "fixed alpha must be at least 2");
                a
            }
            AlphaPolicy::Theorem9 { gamma } => theorem9_alpha(f, eps, global_delta, gamma),
            AlphaPolicy::LocalTheorem9 { gamma } => theorem9_alpha(f, eps, local_delta, gamma),
        }
    }
}

impl Default for AlphaPolicy {
    fn default() -> Self {
        Self::theorem9()
    }
}

/// Checked [`theorem9_alpha`].
///
/// # Errors
///
/// Returns [`SolveError::InvalidGamma`] for `γ ≤ 0`, NaN, or infinite γ,
/// and [`SolveError::InvalidEpsilon`] for ε outside `(0, 1]`.
pub fn try_theorem9_alpha(f: u32, eps: f64, delta: u32, gamma: f64) -> Result<u32, SolveError> {
    AlphaPolicy::Theorem9 { gamma }.validate()?;
    try_beta(f, eps)?;
    Ok(theorem9_alpha(f, eps, delta, gamma))
}

/// The α of Theorem 9 for maximum degree `delta`, rank `f`, slack `eps`,
/// constant `gamma`, rounded to an integer ≥ 2.
///
/// # Panics
///
/// Panics if `gamma <= 0.0`, `f == 0`, or `eps` is outside `(0, 1]` (see
/// [`beta`] on why solve paths cannot reach this;
/// [`try_theorem9_alpha`] is the checked form).
#[must_use]
pub fn theorem9_alpha(f: u32, eps: f64, delta: u32, gamma: f64) -> u32 {
    assert!(gamma > 0.0, "gamma must be positive");
    assert!(f > 0, "rank must be positive");
    assert!(eps > 0.0 && eps <= 1.0, "epsilon must be in (0, 1]");
    // The paper assumes Δ ≥ 3 so log log Δ > 0; clamp smaller degrees.
    let delta = delta.max(3);
    let log_d = f64::from(delta).log2();
    let loglog_d = log_d.log2().max(f64::MIN_POSITIVE);
    let fz = (f as f64) * (f as f64 / eps).log2().max(1.0);
    let x = log_d / (fz * loglog_d);
    if x >= log_d.powf(gamma / 2.0) {
        (x.round() as u32).max(2)
    } else {
        2
    }
}

/// Which flavour of the dual update runs.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Variant {
    /// §3.2 Algorithm MWHVC: `δ(e) ← δ(e) + bid(e)`; a vertex may climb
    /// several levels in one iteration.
    #[default]
    Standard,
    /// Appendix C: `δ(e) ← δ(e) + bid(e)/2`; each vertex's level increases
    /// by at most one per iteration (Corollary 21), at the cost of at most
    /// twice as many stuck iterations (Lemma 22).
    HalfBid,
}

/// Configuration for [`MwhvcSolver`](crate::MwhvcSolver) and
/// [`solve_reference`](crate::solve_reference).
///
/// # Examples
///
/// ```
/// use dcover_core::{AlphaPolicy, MwhvcConfig, Variant};
///
/// let cfg = MwhvcConfig::new(0.25)?
///     .with_alpha(AlphaPolicy::Fixed(4))
///     .with_variant(Variant::HalfBid);
/// assert_eq!(cfg.epsilon(), 0.25);
/// # Ok::<(), dcover_core::SolveError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MwhvcConfig {
    epsilon: f64,
    alpha: AlphaPolicy,
    variant: Variant,
    budget: Option<BitBudget>,
    trace: bool,
    max_rounds: Option<u64>,
    partition: PartitionPolicy,
}

impl MwhvcConfig {
    /// Creates a configuration with the given ε and defaults elsewhere
    /// (Theorem 9 α, standard variant, automatic CONGEST budget, automatic
    /// round limit from Theorem 8's explicit constants).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    pub fn new(epsilon: f64) -> Result<Self, SolveError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(SolveError::InvalidEpsilon { value: epsilon });
        }
        Ok(Self {
            epsilon,
            alpha: AlphaPolicy::default(),
            variant: Variant::default(),
            budget: None,
            trace: false,
            max_rounds: None,
            partition: PartitionPolicy::default(),
        })
    }

    /// Configuration for the *f-approximation* mode of Corollary 10:
    /// `ε = 1/(n·W)` makes `(f+ε)·OPT < f·OPT + 1`, and integral weights
    /// then give a true f-approximation, in `O(f log n)` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] for degenerate `n`/`W` (e.g.
    /// zero).
    pub fn f_approximation(n: usize, max_weight: u64) -> Result<Self, SolveError> {
        let denom = (n as f64) * (max_weight as f64);
        if !(denom.is_finite() && denom >= 1.0) {
            return Err(SolveError::InvalidEpsilon { value: f64::NAN });
        }
        Self::new((1.0 / denom).min(1.0))
    }

    /// Replaces the ε while keeping every other setting (α policy,
    /// variant, budget, trace, round limit) — how a serving layer derives
    /// a per-request configuration from its base configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Result<Self, SolveError> {
        if !(epsilon > 0.0 && epsilon <= 1.0) {
            return Err(SolveError::InvalidEpsilon { value: epsilon });
        }
        self.epsilon = epsilon;
        Ok(self)
    }

    /// Sets the α policy.
    #[must_use]
    pub fn with_alpha(mut self, alpha: AlphaPolicy) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the dual-update variant.
    #[must_use]
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Overrides the per-link per-round bit budget (default: `32·⌈log₂ N⌉`
    /// for the `N`-node communication network).
    #[must_use]
    pub fn with_budget(mut self, budget: BitBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Enables per-round metric tracing in the returned report.
    #[must_use]
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Sets the chunk partition policy for parallel solves:
    /// [`PartitionPolicy::Locality`] clusters connected nodes into the
    /// same worker chunk so most messages take the engine's intra-chunk
    /// fast path. Results are bit-identical either way (and identical to
    /// sequential solves); the policy only affects scheduling and the
    /// intra/cross-chunk message split reported in the
    /// [`SimReport`](dcover_congest::SimReport). Sequential solves ignore
    /// it (one chunk).
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionPolicy) -> Self {
        self.partition = partition;
        self
    }

    /// Overrides the round limit (default: the explicit Theorem 8 bound
    /// computed by [`analysis::round_bound`](crate::analysis::round_bound)
    /// with a safety factor; hitting it is reported as an error because it
    /// would falsify the paper's bound).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Re-validates every user-suppliable parameter as typed errors: ε in
    /// `(0, 1]` (defensive — the constructors already enforce it) and the
    /// α policy's fixed α / γ, which the builder setters deliberately do
    /// **not** check so configs stay infallible to assemble. Every solve
    /// entry point calls this before touching the instance, so no
    /// user-supplied ε, α, or γ can panic a solve — it errors instead.
    ///
    /// # Errors
    ///
    /// [`SolveError::InvalidEpsilon`], [`SolveError::InvalidAlpha`], or
    /// [`SolveError::InvalidGamma`].
    pub fn validate(&self) -> Result<(), SolveError> {
        if !(self.epsilon > 0.0 && self.epsilon <= 1.0) {
            return Err(SolveError::InvalidEpsilon {
                value: self.epsilon,
            });
        }
        self.alpha.validate()
    }

    /// The approximation slack ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The α policy.
    #[must_use]
    pub fn alpha(&self) -> AlphaPolicy {
        self.alpha
    }

    /// The dual-update variant.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The configured budget override, if any.
    #[must_use]
    pub fn budget(&self) -> Option<BitBudget> {
        self.budget
    }

    /// Whether per-round tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> bool {
        self.trace
    }

    /// The configured round-limit override, if any.
    #[must_use]
    pub fn max_rounds(&self) -> Option<u64> {
        self.max_rounds
    }

    /// The chunk partition policy used by parallel solves.
    #[must_use]
    pub fn partition(&self) -> PartitionPolicy {
        self.partition
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_matches_definition() {
        assert!((beta(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((beta(3, 0.5) - 0.5 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn z_is_log_of_inverse_beta() {
        // f = 2, eps = 1 -> beta = 1/3 -> z = ceil(log2 3) = 2
        assert_eq!(z_levels(2, 1.0), 2);
        // f = 2, eps = 0.1 -> beta = 0.1/2.1 -> 1/beta = 21 -> z = 5
        assert_eq!(z_levels(2, 0.1), 5);
    }

    #[test]
    fn z_grows_like_log_f_over_eps() {
        let z1 = z_levels(2, 0.5);
        let z2 = z_levels(2, 0.5 / 1024.0);
        assert!(z2 >= z1 + 9, "halving eps 10 times should add ~10 levels");
    }

    #[test]
    fn fixed_alpha_resolves() {
        let p = AlphaPolicy::Fixed(5);
        assert_eq!(p.resolve(3, 0.5, 10, 1000), 5);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn fixed_alpha_below_two_panics() {
        let _ = AlphaPolicy::Fixed(1).resolve(2, 0.5, 4, 4);
    }

    #[test]
    fn theorem9_alpha_is_at_least_two() {
        for delta in [1u32, 3, 10, 100, 10_000, 1_000_000] {
            for f in [1u32, 2, 5] {
                for eps in [1.0, 0.5, 0.01] {
                    assert!(theorem9_alpha(f, eps, delta, 0.001) >= 2);
                }
            }
        }
    }

    #[test]
    fn theorem9_alpha_grows_with_delta_for_small_f() {
        // For f = 1, eps = 1 the fz term is 1, so alpha ~ log Δ / loglog Δ.
        let small = theorem9_alpha(1, 1.0, 16, 0.001);
        let big = theorem9_alpha(1, 1.0, 1 << 30, 0.001);
        assert!(big > small, "alpha should grow: {small} vs {big}");
    }

    #[test]
    fn local_policy_uses_local_delta() {
        let p = AlphaPolicy::LocalTheorem9 { gamma: 0.001 };
        let a_local = p.resolve(1, 1.0, 1 << 30, 4);
        let a_if_global = p.resolve(1, 1.0, 4, 4);
        assert!(a_local > a_if_global);
    }

    #[test]
    fn config_builder() {
        let cfg = MwhvcConfig::new(0.5)
            .unwrap()
            .with_alpha(AlphaPolicy::Fixed(2))
            .with_variant(Variant::HalfBid)
            .with_trace(true)
            .with_max_rounds(99)
            .with_partition(PartitionPolicy::Locality);
        assert_eq!(cfg.epsilon(), 0.5);
        assert_eq!(cfg.alpha(), AlphaPolicy::Fixed(2));
        assert_eq!(cfg.variant(), Variant::HalfBid);
        assert!(cfg.trace());
        assert_eq!(cfg.max_rounds(), Some(99));
        assert_eq!(cfg.partition(), PartitionPolicy::Locality);
        assert_eq!(
            MwhvcConfig::new(0.5).unwrap().partition(),
            PartitionPolicy::Contiguous
        );
    }

    #[test]
    fn invalid_epsilon_rejected() {
        assert!(MwhvcConfig::new(0.0).is_err());
        assert!(MwhvcConfig::new(-1.0).is_err());
        assert!(MwhvcConfig::new(1.5).is_err());
        assert!(MwhvcConfig::new(f64::NAN).is_err());
        assert!(MwhvcConfig::new(1.0).is_ok());
    }

    #[test]
    fn f_approximation_epsilon() {
        let cfg = MwhvcConfig::f_approximation(100, 10).unwrap();
        assert!((cfg.epsilon() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn checked_variants_return_typed_errors() {
        use crate::SolveError;
        assert!(matches!(
            try_beta(2, 0.0),
            Err(SolveError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            try_z_levels(2, f64::NAN),
            Err(SolveError::InvalidEpsilon { .. })
        ));
        assert!(matches!(
            try_theorem9_alpha(2, 0.5, 10, 0.0),
            Err(SolveError::InvalidGamma { .. })
        ));
        assert!(matches!(
            try_theorem9_alpha(2, 0.5, 10, f64::INFINITY),
            Err(SolveError::InvalidGamma { .. })
        ));
        assert_eq!(try_beta(2, 1.0).unwrap(), beta(2, 1.0));
        assert_eq!(try_z_levels(2, 0.1).unwrap(), z_levels(2, 0.1));
        assert_eq!(
            try_theorem9_alpha(1, 1.0, 1 << 20, 0.001).unwrap(),
            theorem9_alpha(1, 1.0, 1 << 20, 0.001)
        );
    }

    #[test]
    fn policy_and_config_validation() {
        use crate::SolveError;
        assert_eq!(
            AlphaPolicy::Fixed(1).validate(),
            Err(SolveError::InvalidAlpha { alpha: 1 })
        );
        assert!(AlphaPolicy::Fixed(2).validate().is_ok());
        assert!(matches!(
            (AlphaPolicy::LocalTheorem9 { gamma: -1.0 }).validate(),
            Err(SolveError::InvalidGamma { .. })
        ));
        assert!(AlphaPolicy::theorem9().validate().is_ok());
        let good = MwhvcConfig::new(0.5).unwrap();
        assert!(good.validate().is_ok());
        let bad = MwhvcConfig::new(0.5)
            .unwrap()
            .with_alpha(AlphaPolicy::Fixed(0));
        assert_eq!(bad.validate(), Err(SolveError::InvalidAlpha { alpha: 0 }));
    }
}
