//! Self-contained, independently verifiable solution certificates.
//!
//! A [`Certificate`] packages a cover together with the dual edge packing
//! the algorithm built. Verification needs nothing but the instance: it
//! re-checks coverage, dual feasibility, β-tightness of every cover member
//! (the Claim 20 precondition), and derives the approximation bound
//! `w(C) ≤ (f + ε)·OPT` from first principles — so a consumer does not have
//! to trust the solver, the simulator, or this crate's internals.

use dcover_hypergraph::{Cover, Hypergraph};

use crate::params::beta;
use crate::solver::CoverResult;

/// Why a certificate failed to verify.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CertificateError {
    /// Shape mismatch between certificate and instance.
    ShapeMismatch {
        /// Description of what didn't line up.
        what: &'static str,
    },
    /// Some hyperedge is not covered.
    Uncovered {
        /// Index of the uncovered edge.
        edge: usize,
    },
    /// A dual variable is negative.
    NegativeDual {
        /// Index of the offending edge.
        edge: usize,
    },
    /// A vertex's packing constraint `Σ_{e∋v} δ(e) ≤ w(v)` is violated.
    PackingViolated {
        /// The vertex.
        vertex: usize,
        /// The dual sum at that vertex.
        sum: f64,
        /// The weight it may not exceed.
        weight: u64,
    },
    /// A cover member is not β-tight, so the Claim 20 weight bound would
    /// not apply to it.
    NotTight {
        /// The vertex.
        vertex: usize,
        /// Its dual sum.
        sum: f64,
        /// The β-tightness threshold `(1−β)·w(v)`.
        threshold: f64,
    },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            CertificateError::Uncovered { edge } => write!(f, "edge {edge} is not covered"),
            CertificateError::NegativeDual { edge } => {
                write!(f, "dual of edge {edge} is negative")
            }
            CertificateError::PackingViolated {
                vertex,
                sum,
                weight,
            } => write!(f, "packing violated at vertex {vertex}: {sum} > {weight}"),
            CertificateError::NotTight {
                vertex,
                sum,
                threshold,
            } => write!(f, "cover vertex {vertex} is not tight: {sum} < {threshold}"),
        }
    }
}

impl std::error::Error for CertificateError {}

/// A cover plus the feasible dual packing that certifies its quality.
///
/// # Examples
///
/// ```
/// use dcover_core::{Certificate, MwhvcSolver};
/// use dcover_hypergraph::from_edge_lists;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = from_edge_lists(3, &[&[0, 1], &[1, 2]])?;
/// let result = MwhvcSolver::with_epsilon(0.5)?.solve(&g)?;
/// let cert = Certificate::from_result(&result, 0.5);
/// let bound = cert.verify(&g)?;
/// assert!(bound <= g.rank() as f64 + 0.5 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The vertex cover.
    pub cover: Cover,
    /// The dual edge packing `δ(e)` (one value per hyperedge).
    pub duals: Vec<f64>,
    /// The ε the run was configured with (fixes β for the tightness check).
    pub epsilon: f64,
    /// Relative tolerance for the floating-point checks — shared with the
    /// runtime invariant checkers as
    /// [`DEFAULT_TOLERANCE`](crate::DEFAULT_TOLERANCE). Duals are
    /// accumulated incrementally in `f64` (and warm starts additionally
    /// clamp them with a multiply), so packing sums and β-tightness
    /// thresholds attained with *equality* in exact arithmetic can drift
    /// by a few ULPs in either direction; comparing exactly would reject
    /// valid covers. Never set this to 0 for real verification.
    pub tolerance: f64,
}

impl Certificate {
    /// Builds a certificate from a solver result.
    #[must_use]
    pub fn from_result(result: &CoverResult, epsilon: f64) -> Self {
        Self {
            cover: result.cover.clone(),
            duals: result.duals.clone(),
            epsilon,
            tolerance: crate::invariants::DEFAULT_TOLERANCE,
        }
    }

    /// Verifies the certificate against `g` from first principles and
    /// returns the proven ratio bound `w(C)/Σδ` (≥ the true approximation
    /// ratio; ≤ `f + ε` whenever the β-tightness check passes, by the
    /// Claim 20 argument).
    ///
    /// # Errors
    ///
    /// Returns the first failed check as a [`CertificateError`].
    pub fn verify(&self, g: &Hypergraph) -> Result<f64, CertificateError> {
        if self.cover.universe() != g.n() {
            return Err(CertificateError::ShapeMismatch {
                what: "cover universe vs vertex count",
            });
        }
        if self.duals.len() != g.m() {
            return Err(CertificateError::ShapeMismatch {
                what: "dual count vs edge count",
            });
        }
        // Coverage.
        for e in g.edges() {
            if !g.edge(e).iter().any(|&v| self.cover.contains(v)) {
                return Err(CertificateError::Uncovered { edge: e.index() });
            }
        }
        // Dual feasibility.
        for (ei, &d) in self.duals.iter().enumerate() {
            if d < 0.0 {
                return Err(CertificateError::NegativeDual { edge: ei });
            }
        }
        let b = beta(g.rank().max(1), self.epsilon);
        for v in g.vertices() {
            let sum: f64 = g
                .incident_edges(v)
                .iter()
                .map(|&e| self.duals[e.index()])
                .sum();
            let w = g.weight(v);
            if sum > w as f64 * (1.0 + self.tolerance) {
                return Err(CertificateError::PackingViolated {
                    vertex: v.index(),
                    sum,
                    weight: w,
                });
            }
            if self.cover.contains(v) {
                let threshold = (1.0 - b) * w as f64;
                if sum < threshold * (1.0 - self.tolerance) {
                    return Err(CertificateError::NotTight {
                        vertex: v.index(),
                        sum,
                        threshold,
                    });
                }
            }
        }
        let weight = self.cover.weight(g);
        let dual_total: f64 = self.duals.iter().sum();
        Ok(if weight == 0 {
            1.0
        } else {
            weight as f64 / dual_total
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::MwhvcSolver;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use dcover_hypergraph::{from_edge_lists, from_weighted_edge_lists, VertexId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn valid_runs_verify() {
        let mut rng = StdRng::seed_from_u64(80);
        for (f, eps) in [(2usize, 1.0), (3, 0.25), (5, 0.05)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 50,
                    m: 120,
                    rank: f,
                    weights: WeightDist::Uniform { min: 1, max: 100 },
                },
                &mut rng,
            );
            let r = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
            let cert = Certificate::from_result(&r, eps);
            let bound = cert.verify(&g).expect("valid certificate");
            assert!(bound <= f as f64 + eps + 1e-9);
            assert!((bound - r.ratio_upper_bound()).abs() < 1e-12);
        }
    }

    #[test]
    fn tampering_is_detected() {
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2]]).unwrap();
        let r = MwhvcSolver::with_epsilon(0.5).unwrap().solve(&g).unwrap();
        let good = Certificate::from_result(&r, 0.5);

        // Remove a cover vertex -> uncovered edge.
        let mut bad = good.clone();
        for v in g.vertices() {
            bad.cover.remove(v);
        }
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::Uncovered { .. })
        ));

        // Inflate a dual -> packing violation.
        let mut bad = good.clone();
        bad.duals[0] += 1e9;
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::PackingViolated { .. })
        ));

        // Negative dual.
        let mut bad = good.clone();
        bad.duals[0] = -0.5;
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::NegativeDual { edge: 0 })
        ));

        // Add a non-tight vertex to the cover.
        let mut bad = good.clone();
        bad.cover = Cover::full(g.n());
        // (All edges covered, duals feasible; but some member won't be
        // β-tight unless the run happened to saturate everyone.)
        match bad.verify(&g) {
            Err(CertificateError::NotTight { .. }) | Ok(_) => {}
            other => panic!("unexpected: {other:?}"),
        }

        // Wrong shapes.
        let mut bad = good.clone();
        bad.duals.pop();
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::ShapeMismatch { .. })
        ));
        let mut bad = good;
        bad.cover = Cover::from_ids(99, [VertexId::new(0)]);
        assert!(matches!(
            bad.verify(&g),
            Err(CertificateError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn accumulated_rounding_duals_verify_within_tolerance() {
        // Regression: duals whose packing sum exceeds w(v), and whose
        // tightness sum undershoots (1-β)·w(v), by a few ULPs of
        // accumulated rounding — the kind of drift incremental f64
        // accumulation and warm-start clamping produce. A relative
        // tolerance must accept them; an exact comparison (tolerance 0)
        // rejects them, which is exactly the bug this pins down.
        let edge: &[usize] = &[0];
        let g = from_weighted_edge_lists(&[7], &[edge; 7]).unwrap();
        let mut cover = Cover::empty(1);
        cover.insert(VertexId::new(0));

        // Seven duals of 1 + 1ulp: the packing sum lands a hair above 7.
        let over = 1.0 + f64::EPSILON;
        let cert = Certificate {
            cover: cover.clone(),
            duals: vec![over; 7],
            epsilon: 0.5,
            tolerance: crate::invariants::DEFAULT_TOLERANCE,
        };
        let sum: f64 = cert.duals.iter().sum();
        assert!(sum > 7.0, "the drift is real");
        cert.verify(&g)
            .expect("ULP-level packing drift is not a violation");
        let mut exact = cert.clone();
        exact.tolerance = 0.0;
        assert!(
            matches!(
                exact.verify(&g),
                Err(CertificateError::PackingViolated { .. })
            ),
            "exact comparison flags the same certificate"
        );

        // Duals summing a hair *below* the β-tightness threshold
        // (1-β)·w = 6/1.5 · ... : f = 1, β = 0.5/1.5 = 1/3, threshold =
        // 2/3 · 7. Divide it into 7 equal parts and shave one ULP each.
        let threshold = (1.0 - 1.0 / 3.0) * 7.0;
        let under = threshold / 7.0 * (1.0 - f64::EPSILON);
        let cert = Certificate {
            cover,
            duals: vec![under; 7],
            epsilon: 0.5,
            tolerance: crate::invariants::DEFAULT_TOLERANCE,
        };
        let sum: f64 = cert.duals.iter().sum();
        assert!(sum < threshold, "the drift is real");
        cert.verify(&g)
            .expect("ULP-level tightness drift is not a violation");
        let mut exact = cert.clone();
        exact.tolerance = 0.0;
        assert!(
            matches!(exact.verify(&g), Err(CertificateError::NotTight { .. })),
            "exact comparison flags the same certificate"
        );
    }

    #[test]
    fn warm_started_clamped_duals_verify() {
        // A warm seed clamped to Σδ = w(v) via a multiply (t = w/s) can
        // leave the final packing sum within ULPs of w on both sides;
        // the certificate must accept covers built on such duals.
        use crate::warm::WarmState;
        use dcover_hypergraph::{InstanceDelta, VertexId};
        let g = from_edge_lists(4, &[&[0, 1], &[1, 2], &[2, 3], &[0, 3]]).unwrap();
        let solver = MwhvcSolver::with_epsilon(0.25).unwrap();
        let cold = solver.solve(&g).unwrap();
        // Shrink a weight so the seeded packing must be clamped.
        let delta = InstanceDelta {
            set_weights: vec![(VertexId::new(1), 1)],
            ..InstanceDelta::empty()
        };
        let out = delta.apply(&g).unwrap();
        let warm = solver
            .solve_warm(&out.graph, &WarmState::for_delta(&cold, &out))
            .unwrap();
        let cert = Certificate::from_result(&warm, 0.25);
        let bound = cert
            .verify(&out.graph)
            .expect("clamped warm result verifies");
        assert!(bound <= out.graph.rank() as f64 + 0.25 + 1e-9);
    }

    #[test]
    fn error_messages() {
        let e = CertificateError::Uncovered { edge: 3 };
        assert!(e.to_string().contains("edge 3"));
        let e = CertificateError::NotTight {
            vertex: 1,
            sum: 0.5,
            threshold: 0.9,
        };
        assert!(e.to_string().contains("not tight"));
    }
}
