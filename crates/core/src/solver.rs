//! The user-facing solver: runs the distributed protocol on the CONGEST
//! simulator and assembles the result.

use dcover_congest::{BitBudget, EngineArena, Interrupt, ParallelSimulator, SimReport, Simulator};
use dcover_hypergraph::{Cover, Hypergraph};

use crate::analysis;
use crate::error::SolveError;
use crate::params::{z_levels, AlphaPolicy, MwhvcConfig};
use crate::protocol::{build_network, build_network_warm, iterations_of_rounds, MwhvcNode};
use crate::warm::{clamped_seed, WarmState};

/// Largest weight for which `f64` represents integers exactly.
const MAX_EXACT_WEIGHT: u64 = 1 << 53;

/// Safety factor applied to the Theorem 8 round bound for the default round
/// limit (tests use the exact bound; the default limit only guards against
/// infinite loops from bugs).
const ROUND_LIMIT_SAFETY: u64 = 4;

/// The outcome of a solve: the cover, the dual certificate, and the
/// communication metrics.
#[derive(Clone, Debug)]
pub struct CoverResult {
    /// The computed vertex cover `C` (always a valid cover).
    pub cover: Cover,
    /// Final dual variable `δ(e)` per hyperedge — a feasible edge packing.
    pub duals: Vec<f64>,
    /// Final level `ℓ(v)` per vertex.
    pub levels: Vec<u32>,
    /// `w(C)`.
    pub weight: u64,
    /// `Σ_e δ(e)` — by LP weak duality a lower bound on the *fractional*
    /// optimum, hence `weight / dual_total` upper-bounds the true
    /// approximation ratio.
    pub dual_total: f64,
    /// Number of algorithm iterations executed (each is 4 CONGEST rounds).
    pub iterations: u64,
    /// Simulator communication report (rounds, messages, bits, maxima).
    pub report: SimReport,
}

impl CoverResult {
    /// Certified upper bound on the approximation ratio,
    /// `w(C) / Σ_e δ(e)` (1.0 for empty instances). The paper guarantees
    /// this is at most `f + ε` (Corollary 3).
    #[must_use]
    pub fn ratio_upper_bound(&self) -> f64 {
        if self.weight == 0 {
            1.0
        } else {
            self.weight as f64 / self.dual_total
        }
    }

    /// Total CONGEST rounds used.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.report.rounds
    }

    /// The result of solving the empty instance.
    pub(crate) fn empty() -> Self {
        CoverResult {
            cover: Cover::empty(0),
            duals: Vec::new(),
            levels: Vec::new(),
            weight: 0,
            dual_total: 0.0,
            iterations: 0,
            report: SimReport::default(),
        }
    }
}

/// Distributed `(f + ε)`-approximation solver for minimum weight hypergraph
/// vertex cover (Algorithm MWHVC of Ben-Basat et al., DISC 2019).
///
/// # Examples
///
/// ```
/// use dcover_core::MwhvcSolver;
/// use dcover_hypergraph::from_weighted_edge_lists;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A path a - b - c: picking b (weight 1) covers both edges.
/// let g = from_weighted_edge_lists(&[10, 1, 10], &[&[0, 1], &[1, 2]])?;
/// let result = MwhvcSolver::with_epsilon(0.5)?.solve(&g)?;
/// assert!(result.cover.is_cover_of(&g));
/// assert_eq!(result.weight, 1);
/// assert!(result.ratio_upper_bound() <= 2.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct MwhvcSolver {
    config: MwhvcConfig,
    /// Cooperative interrupt checked by the simulators once per round;
    /// `None` for an uninterruptible solve.
    interrupt: Option<Interrupt>,
}

impl MwhvcSolver {
    /// Creates a solver with an explicit configuration.
    #[must_use]
    pub fn new(config: MwhvcConfig) -> Self {
        Self {
            config,
            interrupt: None,
        }
    }

    /// Creates a solver with the given ε and default settings.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidEpsilon`] unless `0 < epsilon ≤ 1`.
    pub fn with_epsilon(epsilon: f64) -> Result<Self, SolveError> {
        Ok(Self::new(MwhvcConfig::new(epsilon)?))
    }

    /// The solver's configuration.
    #[must_use]
    pub fn config(&self) -> &MwhvcConfig {
        &self.config
    }

    /// Attaches a cooperative [`Interrupt`] (cancel token and/or absolute
    /// deadline) to every solve made through this solver: the schedulers
    /// check it once per CONGEST round, and a fired interrupt stops the
    /// run at the next round boundary with the typed
    /// [`SolveError::Sim`]`(`[`SimError::Interrupted`](dcover_congest::SimError::Interrupted)`)`.
    /// Completed rounds stay bit-identical to an uninterrupted run.
    #[must_use]
    pub fn with_interrupt(mut self, interrupt: Interrupt) -> Self {
        self.interrupt = Some(interrupt);
        self
    }

    /// Runs the protocol on the deterministic sequential scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::WeightTooLarge`] if a weight exceeds 2⁵³, or
    /// [`SolveError::Sim`] if the simulation violates the CONGEST bit budget
    /// or the round limit (both indicate bugs or deliberately tight limits).
    pub fn solve(&self, g: &Hypergraph) -> Result<CoverResult, SolveError> {
        let mut arena = EngineArena::new();
        self.solve_with_arena(g, &mut arena)
    }

    /// Like [`solve`](Self::solve), but recycles the buffers of `arena`
    /// across calls (mailbox slots, dirty lists, worklists and staging
    /// buckets keep their capacity), which is what a serving loop wants.
    /// Results are bit-identical to [`solve`](Self::solve).
    /// [`SolveSession::solve_batch`](crate::SolveSession::solve_batch)
    /// drives this from a worker pool with one arena per worker.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve). On error the arena is still
    /// recovered and reusable.
    pub fn solve_with_arena(
        &self,
        g: &Hypergraph,
        arena: &mut EngineArena<MwhvcNode>,
    ) -> Result<CoverResult, SolveError> {
        self.validate(g)?;
        if g.n() == 0 {
            return Ok(CoverResult::empty());
        }
        let (topo, nodes) = build_network(g, &self.config);
        let limit = self.round_limit(g);
        let taken = std::mem::take(arena);
        let mut sim = Simulator::with_arena(topo, nodes, taken)
            .with_budget(self.budget_for(g))
            .with_trace(self.config.trace());
        if let Some(interrupt) = &self.interrupt {
            sim = sim.with_interrupt(interrupt.clone());
        }
        let run = sim.run(limit);
        let (nodes, report, recovered) = sim.into_arena();
        *arena = recovered;
        run?;
        Ok(self.assemble(g, &nodes, report))
    }

    /// Warm-started solve: runs the protocol **seeded** with a previous
    /// solve's dual packing and levels instead of from zero — the
    /// incremental path for instance revisions (see
    /// [`WarmState::for_delta`]).
    ///
    /// The initialization rounds differ from a cold solve only in what
    /// they ship: vertices announce their seeded level alongside weight
    /// and degree, and edges return the initial bid pre-halved by the
    /// members' seeded levels (`bid₀·2^{−Σℓ}` — the value the cold
    /// protocol would have reached after the same level raises, so
    /// Claim 1's `Σ bid ≤ 2^{−(ℓ+1)}w` holds from the first iteration).
    /// Seeded duals are **not** re-absorbed; surviving edges keep their
    /// packing, inserted edges start at 0, and the usual level-raising
    /// rounds run from that state. Consequences:
    ///
    /// * every result still passes
    ///   [`Certificate::verify`](crate::Certificate::verify) — cover
    ///   members only join β-tight, and the seeded packing is clamped to
    ///   feasibility first (see [`WarmState`]);
    /// * a warm solve of an **unchanged** instance reproduces the cold
    ///   result bit-for-bit (cover, duals, levels, weight, dual total) in
    ///   a handful of rounds: every previous cover member is still tight
    ///   and re-joins immediately, which covers every edge;
    /// * freshly inserted edges can legitimately end with `δ(e) = 0`
    ///   (covered by an already-tight member before ever bidding), so
    ///   unlike cold results, warm duals are only guaranteed
    ///   non-negative.
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve), plus
    /// [`SolveError::WarmMismatch`] if `warm` does not fit `g` (wrong
    /// vector lengths, negative or non-finite dual).
    pub fn solve_warm(&self, g: &Hypergraph, warm: &WarmState) -> Result<CoverResult, SolveError> {
        let mut arena = EngineArena::new();
        self.solve_warm_with_arena(g, warm, &mut arena)
    }

    /// Like [`solve_warm`](Self::solve_warm), but recycles `arena` across
    /// calls — the serving-loop shape (one warm solve per revision on a
    /// pool worker).
    ///
    /// # Errors
    ///
    /// Same as [`solve_warm`](Self::solve_warm). On error the arena is
    /// still recovered and reusable.
    pub fn solve_warm_with_arena(
        &self,
        g: &Hypergraph,
        warm: &WarmState,
        arena: &mut EngineArena<MwhvcNode>,
    ) -> Result<CoverResult, SolveError> {
        self.validate(g)?;
        if warm.duals().len() != g.m() {
            return Err(SolveError::WarmMismatch {
                what: "dual count vs edge count",
            });
        }
        if warm.levels().len() != g.n() {
            return Err(SolveError::WarmMismatch {
                what: "level count vs vertex count",
            });
        }
        if warm.duals().iter().any(|d| !d.is_finite() || *d < 0.0) {
            return Err(SolveError::WarmMismatch {
                what: "duals must be finite and non-negative",
            });
        }
        if g.n() == 0 {
            return Ok(CoverResult::empty());
        }
        let z = z_levels(g.rank().max(1), self.config.epsilon());
        let (duals, levels) = clamped_seed(g, warm, z);
        let (topo, nodes) = build_network_warm(g, &self.config, &duals, &levels);
        let limit = self.round_limit(g);
        let taken = std::mem::take(arena);
        let mut sim = Simulator::with_arena(topo, nodes, taken)
            .with_budget(self.budget_for(g))
            .with_trace(self.config.trace());
        if let Some(interrupt) = &self.interrupt {
            sim = sim.with_interrupt(interrupt.clone());
        }
        let run = sim.run(limit);
        let (nodes, report, recovered) = sim.into_arena();
        *arena = recovered;
        run?;
        Ok(self.assemble(g, &nodes, report))
    }

    /// Runs the protocol on the thread-pool scheduler with identical
    /// semantics (and therefore identical results).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn solve_parallel(
        &self,
        g: &Hypergraph,
        threads: usize,
    ) -> Result<CoverResult, SolveError> {
        assert!(threads > 0, "need at least one worker thread");
        self.validate(g)?;
        if g.n() == 0 {
            return Ok(CoverResult::empty());
        }
        let (topo, nodes) = build_network(g, &self.config);
        let limit = self.round_limit(g);
        let mut sim =
            ParallelSimulator::with_partition(topo, nodes, threads, self.config.partition())
                .with_budget(self.budget_for(g))
                .with_trace(self.config.trace());
        if let Some(interrupt) = &self.interrupt {
            sim = sim.with_interrupt(interrupt.clone());
        }
        sim.run(limit)?;
        let (nodes, report) = sim.into_parts();
        Ok(self.assemble(g, &nodes, report))
    }

    /// The round limit used for `g` (configured override or the Theorem 8
    /// bound times a safety factor). Saturates at `u64::MAX` for extreme
    /// but legal configurations (huge fixed α, tiny ε) instead of
    /// overflowing.
    #[must_use]
    pub fn round_limit(&self, g: &Hypergraph) -> u64 {
        if let Some(limit) = self.config.max_rounds() {
            return limit;
        }
        let f = g.rank().max(1);
        let delta = g.max_degree().max(1);
        let alpha_hi = self.max_alpha(g);
        // Conservative explicit bound: raises are counted at the slowest
        // growth (α = 2), stuck iterations at the largest multiplier.
        let raises_bound =
            analysis::iteration_bound(f, delta, self.config.epsilon(), 2, self.config.variant());
        let stuck_bound = analysis::iteration_bound(
            f,
            delta,
            self.config.epsilon(),
            alpha_hi,
            self.config.variant(),
        );
        let per_edge = raises_bound.max(stuck_bound);
        ROUND_LIMIT_SAFETY
            .saturating_mul(per_edge.saturating_mul(4).saturating_add(2))
            .saturating_add(64)
    }

    /// The largest α any edge resolves under the configured policy.
    fn max_alpha(&self, g: &Hypergraph) -> u32 {
        let f = g.rank().max(1);
        let eps = self.config.epsilon();
        let delta = g.max_degree().max(1);
        match self.config.alpha() {
            AlphaPolicy::Fixed(a) => a,
            AlphaPolicy::Theorem9 { .. } => self.config.alpha().resolve(f, eps, delta, delta),
            AlphaPolicy::LocalTheorem9 { .. } => g
                .edges()
                .map(|e| {
                    self.config
                        .alpha()
                        .resolve(f, eps, g.local_max_degree(e), delta)
                })
                .max()
                .unwrap_or(2),
        }
    }

    /// Rejects invalid configurations (bad fixed α or γ — ε is validated
    /// at construction, but the α policy setters are infallible) and
    /// weights beyond the exact-`f64` range before any solve, so no
    /// user-supplied parameter can panic a solve path.
    pub(crate) fn validate(&self, g: &Hypergraph) -> Result<(), SolveError> {
        self.config.validate()?;
        for v in g.vertices() {
            let w = g.weight(v);
            if w > MAX_EXACT_WEIGHT {
                return Err(SolveError::WeightTooLarge {
                    vertex: v.index(),
                    weight: w,
                });
            }
        }
        Ok(())
    }

    /// The bit budget used for `g` (configured override or the CONGEST
    /// convention for the bipartite communication network).
    pub(crate) fn budget_for(&self, g: &Hypergraph) -> BitBudget {
        self.config
            .budget()
            .unwrap_or_else(|| BitBudget::congest(g.n() + g.m(), 32))
    }

    /// Extracts the cover, levels, and per-edge duals from the final node
    /// states.
    pub(crate) fn assemble(
        &self,
        g: &Hypergraph,
        nodes: &[MwhvcNode],
        report: SimReport,
    ) -> CoverResult {
        let n = g.n();
        let mut cover = Cover::empty(n);
        let mut levels = vec![0u32; n];
        let mut duals = vec![f64::NAN; g.m()];
        for v in g.vertices() {
            let node = &nodes[v.index()];
            if node.in_cover().expect("node 0..n is a vertex") {
                cover.insert(v);
            }
            levels[v.index()] = node.level().expect("node 0..n is a vertex");
            let port_duals = node.port_duals().expect("node 0..n is a vertex");
            for (port, &e) in g.incident_edges(v).iter().enumerate() {
                let d = port_duals[port];
                let slot = &mut duals[e.index()];
                if slot.is_nan() {
                    *slot = d;
                } else {
                    // Replicas are maintained with identical float ops, so
                    // members agree exactly.
                    debug_assert_eq!(*slot, d, "dual replicas disagree on edge {e} (member {v})");
                }
            }
        }
        assert!(
            cover.is_cover_of(g),
            "internal error: protocol terminated without a vertex cover"
        );
        let weight = cover.weight(g);
        let dual_total: f64 = duals.iter().copied().filter(|d| !d.is_nan()).sum();
        CoverResult {
            cover,
            duals,
            levels,
            weight,
            dual_total,
            iterations: iterations_of_rounds(report.rounds),
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Variant;
    use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
    use dcover_hypergraph::{from_edge_lists, from_weighted_edge_lists};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn solver(eps: f64) -> MwhvcSolver {
        MwhvcSolver::with_epsilon(eps).unwrap()
    }

    #[test]
    fn single_edge_cheapest_vertex() {
        let g = from_weighted_edge_lists(&[5, 2, 9], &[&[0, 1, 2]]).unwrap();
        let r = solver(0.5).solve(&g).unwrap();
        assert!(r.cover.is_cover_of(&g));
        // (f+eps)·OPT with OPT = 2 allows weight ≤ 7; the algorithm actually
        // picks only β-tight vertices, so certify via the dual bound.
        assert!(r.ratio_upper_bound() <= 3.5 + 1e-9);
    }

    #[test]
    fn triangle_cover() {
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2], &[2, 0]]).unwrap();
        let r = solver(1.0).solve(&g).unwrap();
        assert!(r.cover.is_cover_of(&g));
        assert!(r.cover.len() >= 2); // OPT of a triangle is 2
        assert!(r.ratio_upper_bound() <= 3.0 + 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = from_edge_lists(0, &[]).unwrap();
        let r = solver(0.5).solve(&g).unwrap();
        assert_eq!(r.weight, 0);
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn edgeless_graph_selects_nothing() {
        let g = from_weighted_edge_lists(&[3, 4], &[]).unwrap();
        let r = solver(0.5).solve(&g).unwrap();
        assert!(r.cover.is_empty());
        assert_eq!(r.weight, 0);
        assert!(r.report.all_halted);
    }

    #[test]
    fn a_fired_interrupt_stops_every_solve_path_before_the_first_round() {
        use dcover_congest::{CancelToken, Interrupt, InterruptReason, SimError};
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2], &[2, 0]]).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let s = solver(0.5).with_interrupt(Interrupt::new().with_token(token));
        for result in [s.solve(&g), s.solve_parallel(&g, 2)] {
            match result {
                Err(SolveError::Sim(SimError::Interrupted { reason, round, .. })) => {
                    assert_eq!(reason, InterruptReason::Cancelled);
                    assert_eq!(round, 0, "stopped at the first round boundary");
                }
                other => panic!("expected Interrupted, got {other:?}"),
            }
        }
        // An unfired interrupt changes nothing: bit-identical result.
        let idle = solver(0.5).with_interrupt(Interrupt::new().with_token(CancelToken::new()));
        let plain = solver(0.5).solve(&g).unwrap();
        let watched = idle.solve(&g).unwrap();
        assert_eq!(plain.cover, watched.cover);
        assert_eq!(plain.duals, watched.duals);
        assert_eq!(plain.report, watched.report);
    }

    #[test]
    fn approximation_bound_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for (f, eps) in [(2u32, 1.0), (3, 0.5), (4, 0.25)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 60,
                    m: 150,
                    rank: f as usize,
                    weights: WeightDist::Uniform { min: 1, max: 50 },
                },
                &mut rng,
            );
            let r = solver(eps).solve(&g).unwrap();
            assert!(r.cover.is_cover_of(&g));
            let bound = f as f64 + eps;
            assert!(
                r.ratio_upper_bound() <= bound + 1e-9,
                "ratio {} > {bound} for f={f}, eps={eps}",
                r.ratio_upper_bound()
            );
        }
    }

    #[test]
    fn parallel_solve_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_uniform(
            &RandomUniform {
                n: 40,
                m: 90,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 9 },
            },
            &mut rng,
        );
        let s = solver(0.5);
        let a = s.solve(&g).unwrap();
        let b = s.solve_parallel(&g, 3).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.levels, b.levels);
        assert_eq!(a.duals, b.duals);
        assert_eq!(a.report.rounds, b.report.rounds);
        assert_eq!(a.report.total_messages, b.report.total_messages);
    }

    #[test]
    fn halfbid_variant_also_correct() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_uniform(
            &RandomUniform {
                n: 50,
                m: 120,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 20 },
            },
            &mut rng,
        );
        let cfg = MwhvcConfig::new(0.5)
            .unwrap()
            .with_variant(Variant::HalfBid);
        let r = MwhvcSolver::new(cfg).solve(&g).unwrap();
        assert!(r.cover.is_cover_of(&g));
        assert!(r.ratio_upper_bound() <= 3.5 + 1e-9);
    }

    #[test]
    fn arena_recycled_solves_match_fresh_solves() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut arena = EngineArena::new();
        let s = solver(0.5);
        for trial in 0..4 {
            let g = random_uniform(
                &RandomUniform {
                    n: 30 + 5 * trial,
                    m: 70 + 11 * trial,
                    rank: 2 + trial % 3,
                    weights: WeightDist::Uniform { min: 1, max: 12 },
                },
                &mut rng,
            );
            let fresh = s.solve(&g).unwrap();
            let recycled = s.solve_with_arena(&g, &mut arena).unwrap();
            assert_eq!(fresh.cover, recycled.cover, "trial {trial}");
            assert_eq!(fresh.duals, recycled.duals, "trial {trial}");
            assert_eq!(fresh.levels, recycled.levels, "trial {trial}");
            assert_eq!(fresh.report, recycled.report, "trial {trial}");
        }
    }

    #[test]
    fn round_limit_saturates_for_extreme_configs() {
        // A huge fixed α and a tiny ε must pin the automatic limit at
        // u64::MAX (or at least not overflow in debug builds).
        let cfg = MwhvcConfig::new(1e-12)
            .unwrap()
            .with_alpha(crate::params::AlphaPolicy::Fixed(u32::MAX))
            .with_variant(Variant::HalfBid);
        let s = MwhvcSolver::new(cfg);
        let g = from_edge_lists(3, &[&[0, 1, 2]]).unwrap();
        let limit = s.round_limit(&g);
        assert!(limit >= analysis::round_bound(3, 1, 1e-12, u32::MAX, Variant::HalfBid));
    }

    #[test]
    fn warm_resolve_of_unchanged_instance_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(31);
        for (f, eps) in [(2usize, 1.0), (3, 0.5), (4, 0.25)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 50,
                    m: 130,
                    rank: f,
                    weights: WeightDist::Uniform { min: 1, max: 40 },
                },
                &mut rng,
            );
            let s = solver(eps);
            let cold = s.solve(&g).unwrap();
            let warm = s
                .solve_warm(&g, &crate::warm::WarmState::from_result(&cold))
                .unwrap();
            assert_eq!(warm.cover, cold.cover, "f={f} eps={eps}");
            assert_eq!(warm.duals, cold.duals, "f={f} eps={eps}");
            assert_eq!(warm.levels, cold.levels, "f={f} eps={eps}");
            assert_eq!(warm.weight, cold.weight, "f={f} eps={eps}");
            assert_eq!(warm.dual_total, cold.dual_total, "f={f} eps={eps}");
            // The whole point: the warm run converges in O(1) rounds.
            assert!(
                warm.rounds() < cold.rounds() || cold.rounds() <= 6,
                "warm {} vs cold {}",
                warm.rounds(),
                cold.rounds()
            );
        }
    }

    #[test]
    fn warm_solve_after_revision_is_certified() {
        use dcover_hypergraph::{EdgeId, InstanceDelta, VertexId};
        let mut rng = StdRng::seed_from_u64(32);
        let g = random_uniform(
            &RandomUniform {
                n: 40,
                m: 100,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 30 },
            },
            &mut rng,
        );
        let s = solver(0.5);
        let cold = s.solve(&g).unwrap();
        let delta = InstanceDelta {
            remove_edges: vec![EdgeId::new(3), EdgeId::new(77)],
            add_edges: vec![
                vec![VertexId::new(0), VertexId::new(5), VertexId::new(9)],
                vec![VertexId::new(11), VertexId::new(2)],
            ],
            set_weights: vec![(VertexId::new(7), 1), (VertexId::new(20), 200)],
        };
        let out = delta.apply(&g).unwrap();
        let warm = s
            .solve_warm(&out.graph, &crate::warm::WarmState::for_delta(&cold, &out))
            .unwrap();
        assert!(warm.cover.is_cover_of(&out.graph));
        let cert = crate::Certificate::from_result(&warm, 0.5);
        let bound = cert.verify(&out.graph).expect("warm result certifies");
        assert!(bound <= out.graph.rank() as f64 + 0.5 + 1e-9);
    }

    #[test]
    fn warm_shape_mismatches_are_typed_errors() {
        let g = from_weighted_edge_lists(&[2, 3], &[&[0, 1]]).unwrap();
        let s = solver(0.5);
        let r = s.solve(&g).unwrap();
        let bad = crate::warm::WarmState::from_parts(vec![0.1, 0.2], r.levels.clone());
        assert!(matches!(
            s.solve_warm(&g, &bad),
            Err(SolveError::WarmMismatch { .. })
        ));
        let bad = crate::warm::WarmState::from_parts(r.duals.clone(), vec![0; 9]);
        assert!(matches!(
            s.solve_warm(&g, &bad),
            Err(SolveError::WarmMismatch { .. })
        ));
        let bad = crate::warm::WarmState::from_parts(vec![-0.5], r.levels.clone());
        assert!(matches!(
            s.solve_warm(&g, &bad),
            Err(SolveError::WarmMismatch { .. })
        ));
    }

    #[test]
    fn bad_alpha_and_gamma_error_instead_of_panicking() {
        let g = from_edge_lists(3, &[&[0, 1], &[1, 2]]).unwrap();
        let cfg = MwhvcConfig::new(0.5)
            .unwrap()
            .with_alpha(crate::params::AlphaPolicy::Fixed(1));
        assert!(matches!(
            MwhvcSolver::new(cfg).solve(&g),
            Err(SolveError::InvalidAlpha { alpha: 1 })
        ));
        let cfg = MwhvcConfig::new(0.5)
            .unwrap()
            .with_alpha(crate::params::AlphaPolicy::Theorem9 { gamma: -0.5 });
        assert!(matches!(
            MwhvcSolver::new(cfg.clone()).solve(&g),
            Err(SolveError::InvalidGamma { .. })
        ));
        assert!(matches!(
            MwhvcSolver::new(cfg).solve_parallel(&g, 2),
            Err(SolveError::InvalidGamma { .. })
        ));
    }

    #[test]
    fn oversized_weight_rejected() {
        let g = from_weighted_edge_lists(&[1 << 60, 1], &[&[0, 1]]).unwrap();
        let err = solver(0.5).solve(&g).unwrap_err();
        assert!(matches!(err, SolveError::WeightTooLarge { vertex: 0, .. }));
    }

    #[test]
    fn congest_budget_holds_by_default() {
        // The default budget is 32·log2(n+m); the run must not trip it.
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_uniform(
            &RandomUniform {
                n: 100,
                m: 200,
                rank: 3,
                weights: WeightDist::Uniform {
                    min: 1,
                    max: 1_000_000,
                },
            },
            &mut rng,
        );
        let r = solver(0.25).solve(&g).unwrap();
        assert!(r.report.max_link_bits <= BitBudget::congest(300, 32).bits());
    }

    #[test]
    fn duals_are_consistent_and_feasible() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = random_uniform(
            &RandomUniform {
                n: 30,
                m: 80,
                rank: 4,
                weights: WeightDist::Uniform { min: 1, max: 10 },
            },
            &mut rng,
        );
        let r = solver(0.5).solve(&g).unwrap();
        for e in g.edges() {
            let d = r.duals[e.index()];
            assert!(d > 0.0, "dual of {e} must be positive");
        }
        for v in g.vertices() {
            let sum: f64 = g
                .incident_edges(v)
                .iter()
                .map(|&e| r.duals[e.index()])
                .sum();
            assert!(
                sum <= g.weight(v) as f64 * (1.0 + 1e-9),
                "packing constraint violated at {v}"
            );
        }
    }
}
