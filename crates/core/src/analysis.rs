//! Explicit (non-asymptotic) versions of the paper's complexity bounds.
//!
//! The tests and benchmarks use these to *check* the theory: a run that
//! exceeds [`round_bound`] would falsify Theorem 8 (or reveal an
//! implementation bug), and the scaling figures plot measured rounds against
//! [`theorem9_shape`].

use crate::params::{z_levels, Variant};

/// Upper bound on the number of *iterations* of Algorithm MWHVC, from the
/// proofs of Lemmas 6/7/22 and Theorem 8 with explicit constants:
///
/// * e-raise iterations ≤ `log_α(Δ · 2^{f·z})` (Lemma 6);
/// * v-stuck iterations ≤ `α` per level per vertex (Lemma 7; `2α` for the
///   Appendix C variant, Lemma 22), `z` levels per vertex, `f` vertices per
///   edge, plus one per level for the boundary iteration in which the level
///   increments;
/// * `+2` covers iteration 0 and the final covering iteration.
///
/// All arithmetic **saturates** at `u64::MAX`: extreme but legal parameters
/// (huge rank or α, tiny ε driving `z` up) produce a pinned bound instead
/// of wrapping (release) or panicking (debug).
///
/// # Panics
///
/// Panics if `alpha < 2`, `f == 0`, or `eps` outside `(0, 1]`.
#[must_use]
pub fn iteration_bound(f: u32, delta: u32, eps: f64, alpha: u32, variant: Variant) -> u64 {
    assert!(alpha >= 2, "alpha must be at least 2");
    let z = u64::from(z_levels(f, eps));
    let f = u64::from(f.max(1));
    let delta = f64::from(delta.max(2));
    // The raise count is computed in floats (`f·z` as a product of floats:
    // the u64 product could already overflow); the final cast saturates.
    let raises = (delta.log2() + f as f64 * z as f64) / f64::from(alpha).log2();
    let stuck_per_level = match variant {
        Variant::Standard => u64::from(alpha).saturating_add(1),
        Variant::HalfBid => u64::from(alpha).saturating_mul(2).saturating_add(2),
    };
    (raises.ceil() as u64)
        .saturating_add(f.saturating_mul(z).saturating_mul(stuck_per_level))
        .saturating_add(2)
}

/// Upper bound on *communication rounds*: 2 initialization rounds plus 4
/// rounds per iteration (the constant-round iteration structure of §3.2 /
/// Appendix B). Saturates at `u64::MAX` like [`iteration_bound`].
///
/// # Panics
///
/// Panics if `alpha < 2`, `f == 0`, or `eps` outside `(0, 1]`.
#[must_use]
pub fn round_bound(f: u32, delta: u32, eps: f64, alpha: u32, variant: Variant) -> u64 {
    iteration_bound(f, delta, eps, alpha, variant)
        .saturating_mul(4)
        .saturating_add(2)
}

/// The asymptotic *shape* of Theorem 9's round complexity,
/// `f·log(f/ε) + log Δ / log log Δ + min{log Δ, f·log(f/ε)·(log Δ)^γ}`,
/// as a plain number (no hidden constant). The scaling experiments fit
/// measured rounds against this to check the growth shape.
///
/// # Panics
///
/// Panics if `f == 0` or `eps` outside `(0, 1]`.
#[must_use]
pub fn theorem9_shape(f: u32, delta: u32, eps: f64, gamma: f64) -> f64 {
    assert!(f > 0, "rank must be positive");
    assert!(eps > 0.0 && eps <= 1.0, "epsilon must be in (0, 1]");
    let delta = f64::from(delta.max(3));
    let log_d = delta.log2();
    let loglog_d = log_d.log2().max(1.0);
    let flf = f as f64 * (f as f64 / eps).log2().max(1.0);
    flf + log_d / loglog_d + (log_d).min(flf * log_d.powf(gamma))
}

/// The `O(log Δ / log log Δ)` lower-bound shape of Kuhn–Moscibroda–
/// Wattenhofer (reference \[19\] of the paper) that Theorem 9 matches: any
/// constant-factor approximation needs `Ω(log Δ / log log Δ)` rounds.
///
/// # Panics
///
/// Panics if `delta == 0` (degenerate).
#[must_use]
pub fn kmw_lower_bound_shape(delta: u32) -> f64 {
    assert!(delta > 0, "delta must be positive");
    let log_d = f64::from(delta.max(3)).log2();
    log_d / log_d.log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_bound_monotone_in_delta() {
        let a = iteration_bound(3, 8, 0.5, 2, Variant::Standard);
        let b = iteration_bound(3, 8192, 0.5, 2, Variant::Standard);
        assert!(b > a);
    }

    #[test]
    fn halfbid_bound_dominates_standard() {
        let s = iteration_bound(3, 128, 0.5, 4, Variant::Standard);
        let h = iteration_bound(3, 128, 0.5, 4, Variant::HalfBid);
        assert!(h > s);
    }

    #[test]
    fn round_bound_is_affine_in_iterations() {
        let it = iteration_bound(2, 64, 1.0, 2, Variant::Standard);
        assert_eq!(round_bound(2, 64, 1.0, 2, Variant::Standard), 2 + 4 * it);
    }

    #[test]
    fn bigger_alpha_fewer_raises_more_stuck() {
        // With alpha = 2 the stuck term is small but raises dominate at huge
        // delta; with huge alpha the opposite. Check both regimes exist.
        let small_alpha = iteration_bound(2, 1 << 20, 0.5, 2, Variant::Standard);
        let big_alpha = iteration_bound(2, 1 << 20, 0.5, 64, Variant::Standard);
        // raises(2) = (20 + f z)/1, raises(64) = (20 + f z)/6: raise part shrinks.
        // Just sanity-check both are positive and different.
        assert_ne!(small_alpha, big_alpha);
        assert!(small_alpha > 0 && big_alpha > 0);
    }

    #[test]
    fn extreme_params_saturate_instead_of_overflowing() {
        // Huge-but-legal parameters used to overflow `f · z · stuck` in
        // `u64` (a debug-mode panic, silent wrap in release). They must pin
        // at u64::MAX instead.
        let it = iteration_bound(u32::MAX, u32::MAX, 1e-9, u32::MAX, Variant::HalfBid);
        assert_eq!(it, u64::MAX);
        assert_eq!(
            round_bound(u32::MAX, u32::MAX, 1e-9, u32::MAX, Variant::HalfBid),
            u64::MAX
        );
        // Tiny ε (large z) with a huge α, Standard variant.
        let it = iteration_bound(u32::MAX, 2, f64::MIN_POSITIVE, u32::MAX, Variant::Standard);
        assert_eq!(it, u64::MAX);
        // Large-but-not-saturating parameters stay monotone (no wrap).
        let a = iteration_bound(1000, 1 << 20, 1e-6, 1 << 20, Variant::HalfBid);
        let b = iteration_bound(1000, 1 << 20, 1e-6, 1 << 21, Variant::HalfBid);
        assert!(b >= a, "{b} < {a}: wrapped");
    }

    #[test]
    fn shape_grows_sublogarithmically() {
        // log Δ / log log Δ grows slower than log Δ.
        let s1 = theorem9_shape(2, 1 << 10, 1.0, 0.001);
        let s2 = theorem9_shape(2, 1 << 20, 1.0, 0.001);
        assert!(s2 > s1);
        let log_ratio = 2.0; // log Δ doubled
        assert!(s2 / s1 < log_ratio, "shape must grow slower than log Δ");
    }

    #[test]
    fn lower_bound_shape_sane() {
        assert!(kmw_lower_bound_shape(1 << 16) > kmw_lower_bound_shape(16));
    }
}
