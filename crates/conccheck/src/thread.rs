//! Model threads: `spawn`/`Builder`/`JoinHandle` mirroring `std::thread`.
//! Inside an execution the spawned closure becomes a virtual thread under
//! scheduler control (backed by a real OS thread that the engine parks and
//! wakes); outside it is a plain `std::thread::spawn`.

use crate::exec::{self, is_abort, Handle};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

enum Imp<T> {
    Model { child: Handle, slot: Slot<T> },
    Os(std::thread::JoinHandle<T>),
}

pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Imp::Os(h) => h.join(),
            Imp::Model { child, slot } => {
                let me = exec::current()
                    .expect("model JoinHandle joined from a thread outside the execution");
                let finished = if std::thread::panicking() {
                    me.join_tolerant(child.tid())
                } else {
                    me.join_thread(child.tid());
                    true
                };
                let taken = if finished {
                    slot.lock().unwrap_or_else(|e| e.into_inner()).take()
                } else {
                    None
                };
                // None: the child panicked (failure already recorded by the
                // engine) or the execution is tearing down.
                taken.unwrap_or_else(|| Err(Box::new("conc-check: thread result unavailable")))
            }
        }
    }
}

#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let name = self.name;
        match exec::current() {
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle(Imp::Os(h)))
            }
            Some(parent) => {
                let child =
                    parent.register_thread(name.clone().unwrap_or_else(|| "vthread".to_string()));
                let slot: Slot<T> = Arc::new(StdMutex::new(None));
                let slot2 = Arc::clone(&slot);
                let child2 = child.clone();
                let mut b = std::thread::Builder::new();
                if let Some(n) = name {
                    b = b.name(n);
                }
                let spawned = b.spawn(move || {
                    exec::set_current(Some(child2.clone()));
                    if !child2.wait_first_schedule() {
                        // Aborted before ever running: balance the books.
                        child2.rollback_spawn();
                    } else {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(value) => {
                                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(value));
                                child2.finish_thread(None);
                            }
                            Err(payload) if is_abort(payload.as_ref()) => {
                                child2.finish_thread(None);
                            }
                            Err(payload) => {
                                child2.finish_thread(Some(payload));
                            }
                        }
                    }
                    exec::set_current(None);
                });
                match spawned {
                    Ok(os) => {
                        parent.push_os_handle(os);
                        Ok(JoinHandle(Imp::Model { child, slot }))
                    }
                    Err(e) => {
                        child.rollback_spawn();
                        Err(e)
                    }
                }
            }
        }
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}
