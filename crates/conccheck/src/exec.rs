//! Execution engine: virtual threads, the baton-passing scheduler, the
//! bounded-preemption DFS and random-walk strategies, and failure detection.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration mode.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Bounded-preemption depth-first search over scheduling decisions.
    Exhaustive,
    /// Seeded random walk: `iterations` executions, uniform choice at every
    /// decision point, no preemption bound.
    Random { seed: u64, iterations: usize },
    /// Re-run exactly one recorded schedule (as printed by a failure).
    Replay(Vec<usize>),
}

/// Checker configuration. `Default` is exhaustive DFS with a preemption
/// bound of 2 and a 4000-execution cap.
#[derive(Clone, Debug)]
pub struct Config {
    pub mode: Mode,
    /// Maximum involuntary context switches per execution (Exhaustive only).
    pub preemption_bound: usize,
    /// Cap on executions for Exhaustive mode; the search reports
    /// `complete = false` if the cap is hit before the space is exhausted.
    pub max_executions: usize,
    /// Livelock guard: maximum scheduling points in a single execution.
    pub max_steps: usize,
    /// Whether model atomics are scheduling points. Disabling shrinks the
    /// state space for scenarios dominated by metrics counters.
    pub yield_on_atomics: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: Mode::Exhaustive,
            preemption_bound: 2,
            max_executions: 4000,
            max_steps: 50_000,
            yield_on_atomics: true,
        }
    }
}

impl Config {
    pub fn exhaustive(preemption_bound: usize, max_executions: usize) -> Self {
        Config {
            mode: Mode::Exhaustive,
            preemption_bound,
            max_executions,
            ..Config::default()
        }
    }

    pub fn random(seed: u64, iterations: usize) -> Self {
        Config {
            mode: Mode::Random { seed, iterations },
            ..Config::default()
        }
    }
}

/// What went wrong in a failing execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// Unfinished threads exist but none can run.
    Deadlock,
    /// Deadlock where some blocked waiter sits on a condvar that *was*
    /// notified — the wakeup raced past it.
    LostWakeup,
    /// A virtual thread panicked (assertion failure, explicit panic, ...).
    Panic,
    /// `max_steps` scheduling points elapsed without completion.
    StepLimit,
}

/// A failing execution: kind, human-readable detail, and the schedule
/// (decision indices) that reproduces it via [`Mode::Replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    pub schedule: Vec<usize>,
    /// 0-based index of the failing execution within the run.
    pub execution: usize,
}

/// Summary of an exploration run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct executions (interleavings) performed.
    pub executions: usize,
    /// Exhaustive mode only: the bounded search space was fully explored.
    pub complete: bool,
    /// Replay divergences (recorded choice out of range for the runnable
    /// set actually observed — scenario is not deterministic).
    pub divergences: usize,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Payload used to unwind virtual threads when an execution is aborted
/// (failure found or run torn down). Recognized and swallowed by the engine.
struct AbortToken;

#[derive(Clone, Debug, PartialEq, Eq)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar { cv: usize, mutex: usize },
    BlockedJoin(usize),
    Finished,
}

struct Trd {
    state: TState,
    name: String,
}

#[derive(Default)]
struct MutexState {
    owner: Option<usize>,
}

#[derive(Default)]
struct CvState {
    /// FIFO of (tid) parked in `wait`; their mutex id lives in their TState.
    waiters: Vec<usize>,
    /// Total notify_one/notify_all calls this execution (for lost-wakeup
    /// classification).
    notifies: u64,
}

/// One recorded scheduling decision (only recorded when |runnable| > 1).
struct Decision {
    runnable: Vec<usize>,
    /// Position of the yielding thread within `runnable`, if it could have
    /// kept running.
    current_idx: Option<usize>,
    chosen: usize,
    preemptions_before: usize,
}

struct Inner {
    threads: Vec<Trd>,
    unfinished: usize,
    /// Currently scheduled thread; `usize::MAX` once the execution is over.
    active: usize,
    steps: usize,
    preemptions: usize,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    decisions: Vec<Decision>,
    /// Schedule prefix to replay (DFS backtracking / Replay mode).
    prefix: Vec<usize>,
    cursor: usize,
    divergences: usize,
    random: Option<u64>,
    max_steps: usize,
    yield_on_atomics: bool,
    failure: Option<Failure>,
    abort: bool,
    execution: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Shared {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

/// Per-OS-thread handle into the execution (thread id + shared state).
#[derive(Clone)]
pub(crate) struct Handle {
    shared: Arc<Shared>,
    tid: usize,
}

/// True while the calling OS thread is a virtual thread of an active
/// exploration. Model primitives use this to pick model vs passthrough
/// behaviour.
pub fn in_execution() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

pub(crate) fn current() -> Option<Handle> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(h: Option<Handle>) {
    CURRENT.with(|c| *c.borrow_mut() = h);
}

impl Shared {
    fn lock(&self) -> StdMutexGuard<'_, Inner> {
        // Poison-tolerant: virtual threads unwind (AbortToken) from inside
        // engine critical sections during teardown; the state is still sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn runnable_set(inner: &Inner) -> Vec<usize> {
    let mut out = Vec::new();
    for (tid, t) in inner.threads.iter().enumerate() {
        let ok = match t.state {
            TState::Runnable => true,
            TState::BlockedMutex(m) => inner.mutexes[m].owner.is_none(),
            TState::BlockedCondvar { .. } => false,
            TState::BlockedJoin(target) => inner.threads[target].state == TState::Finished,
            TState::Finished => false,
        };
        if ok {
            out.push(tid);
        }
    }
    out
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

fn record_failure(inner: &mut Inner, kind: FailureKind, message: String) {
    if inner.failure.is_none() {
        let schedule = inner.decisions.iter().map(|d| d.chosen).collect();
        inner.failure = Some(Failure {
            kind,
            message,
            schedule,
            execution: inner.execution,
        });
    }
    inner.abort = true;
}

fn describe_blocked(inner: &Inner) -> String {
    let mut parts = Vec::new();
    for (tid, t) in inner.threads.iter().enumerate() {
        if t.state == TState::Finished {
            continue;
        }
        let what = match t.state {
            TState::Runnable => "runnable".to_string(),
            TState::BlockedMutex(m) => format!("blocked on mutex #{m}"),
            TState::BlockedCondvar { cv, mutex } => {
                format!("waiting on condvar #{cv} (mutex #{mutex})")
            }
            TState::BlockedJoin(target) => format!("joining thread {target}"),
            TState::Finished => unreachable!(),
        };
        parts.push(format!("thread {tid} `{}` {what}", t.name));
    }
    parts.join("; ")
}

/// Pick the next active thread. Called by the currently-active thread `me`
/// at every scheduling point (after updating its own state). Handles
/// completion and deadlock detection.
fn schedule_next(shared: &Shared, inner: &mut Inner, me: usize) {
    if inner.abort {
        return;
    }
    let runnable = runnable_set(inner);
    if runnable.is_empty() {
        if inner.unfinished == 0 {
            inner.active = usize::MAX;
        } else {
            let lost_wakeup = inner.threads.iter().any(|t| {
                matches!(t.state, TState::BlockedCondvar { cv, .. } if inner.condvars[cv].notifies > 0)
            });
            let kind = if lost_wakeup {
                FailureKind::LostWakeup
            } else {
                FailureKind::Deadlock
            };
            let message = format!(
                "{} unfinished thread(s), none runnable: {}",
                inner.unfinished,
                describe_blocked(inner)
            );
            record_failure(inner, kind, message);
        }
        shared.cv.notify_all();
        return;
    }

    let idx = if runnable.len() == 1 {
        0
    } else {
        let current_idx = runnable.iter().position(|&t| t == me);
        let k = inner.cursor;
        inner.cursor += 1;
        let chosen = if k < inner.prefix.len() {
            let want = inner.prefix[k];
            if want < runnable.len() {
                want
            } else {
                inner.divergences += 1;
                runnable.len() - 1
            }
        } else if let Some(rng) = inner.random.as_mut() {
            (xorshift(rng) % runnable.len() as u64) as usize
        } else {
            // DFS default: keep running the current thread (no preemption);
            // if it blocked, fall back to the lowest-id runnable thread.
            current_idx.unwrap_or(0)
        };
        inner.decisions.push(Decision {
            runnable: runnable.clone(),
            current_idx,
            chosen,
            preemptions_before: inner.preemptions,
        });
        if let Some(ci) = current_idx {
            if chosen != ci {
                inner.preemptions += 1;
            }
        }
        chosen
    };

    let next = runnable[idx];
    inner.active = next;
    if next != me {
        shared.cv.notify_all();
    }
}

impl Handle {
    fn unwind_abort(&self) -> ! {
        resume_unwind(Box::new(AbortToken))
    }

    /// Park until this thread is scheduled again (or the execution aborts).
    fn park<'a>(&'a self, mut inner: StdMutexGuard<'a, Inner>) -> StdMutexGuard<'a, Inner> {
        loop {
            if inner.abort {
                drop(inner);
                self.unwind_abort();
            }
            if inner.active == self.tid {
                return inner;
            }
            inner = self
                .shared
                .cv
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A plain scheduling point: count a step, let the strategy pick who
    /// runs next, park until it is this thread again.
    pub(crate) fn yield_point(&self) {
        let mut inner = self.shared.lock();
        if inner.abort {
            drop(inner);
            self.unwind_abort();
        }
        inner.steps += 1;
        if inner.steps > inner.max_steps {
            let msg = format!("exceeded {} scheduling points (livelock?)", inner.max_steps);
            record_failure(&mut inner, FailureKind::StepLimit, msg);
            self.shared.cv.notify_all();
            drop(inner);
            self.unwind_abort();
        }
        schedule_next(&self.shared, &mut inner, self.tid);
        let _inner = self.park(inner);
    }

    pub(crate) fn atomic_point(&self) {
        if std::thread::panicking() {
            return;
        }
        let do_yield = {
            let inner = self.shared.lock();
            inner.yield_on_atomics
        };
        if do_yield {
            self.yield_point();
        }
    }

    pub(crate) fn same_exec(&self, other: &Handle) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    pub(crate) fn tid(&self) -> usize {
        self.tid
    }

    /// Undo a `register_thread` whose OS spawn failed; the parent stays
    /// active, so no rescheduling happens.
    pub(crate) fn rollback_spawn(&self) {
        let mut inner = self.shared.lock();
        inner.threads[self.tid].state = TState::Finished;
        inner.unfinished -= 1;
    }

    // -- panic-tolerant variants ------------------------------------------
    //
    // Called from destructors running while a virtual thread is unwinding
    // (`std::thread::panicking()`): they never unwind themselves (a second
    // panic would abort the process) and never wait on an aborted execution.
    // Unwind paths therefore execute atomically with respect to the model —
    // their internal interleavings are not explored, which is fine: the
    // execution is either already failing or tearing down.

    /// Park without unwinding; returns `true` if the execution aborted
    /// while parked (caller should proceed in degraded mode).
    fn park_tolerant<'a>(
        &'a self,
        mut inner: StdMutexGuard<'a, Inner>,
    ) -> (StdMutexGuard<'a, Inner>, bool) {
        loop {
            if inner.abort {
                return (inner, true);
            }
            if inner.active == self.tid {
                return (inner, false);
            }
            inner = self
                .shared
                .cv
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Acquire for unwinding threads. Returns `true` if model ownership was
    /// actually taken (so the guard knows whether to model-release).
    pub(crate) fn acquire_tolerant(&self, m: usize) -> bool {
        let mut inner = self.shared.lock();
        if inner.abort {
            return false;
        }
        if inner.mutexes[m].owner.is_none() {
            inner.mutexes[m].owner = Some(self.tid);
            return true;
        }
        inner.threads[self.tid].state = TState::BlockedMutex(m);
        schedule_next(&self.shared, &mut inner, self.tid);
        let (mut inner, aborted) = self.park_tolerant(inner);
        inner.threads[self.tid].state = TState::Runnable;
        if aborted {
            return false;
        }
        inner.mutexes[m].owner = Some(self.tid);
        true
    }

    /// Notify for unwinding threads: performs the waiter transitions without
    /// a scheduling point; no-op once aborted.
    pub(crate) fn notify_tolerant(&self, cv: usize, all: bool) {
        let mut inner = self.shared.lock();
        if inner.abort {
            return;
        }
        inner.condvars[cv].notifies += 1;
        let n = if all {
            inner.condvars[cv].waiters.len()
        } else {
            inner.condvars[cv].waiters.len().min(1)
        };
        for _ in 0..n {
            let w = inner.condvars[cv].waiters.remove(0);
            let m = match inner.threads[w].state {
                TState::BlockedCondvar { mutex, .. } => mutex,
                ref other => unreachable!("condvar waiter in state {other:?}"),
            };
            inner.threads[w].state = TState::BlockedMutex(m);
        }
    }

    /// Join for unwinding threads: waits for the target without unwinding;
    /// returns `false` (target result unavailable) once aborted.
    pub(crate) fn join_tolerant(&self, target: usize) -> bool {
        let mut inner = self.shared.lock();
        if inner.abort {
            return false;
        }
        if inner.threads[target].state == TState::Finished {
            return true;
        }
        inner.threads[self.tid].state = TState::BlockedJoin(target);
        schedule_next(&self.shared, &mut inner, self.tid);
        let (mut inner, aborted) = self.park_tolerant(inner);
        inner.threads[self.tid].state = TState::Runnable;
        !aborted && inner.threads[target].state == TState::Finished
    }

    // -- mutexes ----------------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut inner = self.shared.lock();
        inner.mutexes.push(MutexState::default());
        inner.mutexes.len() - 1
    }

    pub(crate) fn acquire(&self, m: usize) {
        self.yield_point();
        let mut inner = self.shared.lock();
        if inner.abort {
            drop(inner);
            self.unwind_abort();
        }
        if inner.mutexes[m].owner.is_none() {
            inner.mutexes[m].owner = Some(self.tid);
            return;
        }
        // Owned by someone else: block. The scheduler only picks us once the
        // owner released, and nothing runs between that pick and us resuming.
        inner.threads[self.tid].state = TState::BlockedMutex(m);
        schedule_next(&self.shared, &mut inner, self.tid);
        let mut inner = self.park(inner);
        debug_assert!(inner.mutexes[m].owner.is_none());
        inner.mutexes[m].owner = Some(self.tid);
        inner.threads[self.tid].state = TState::Runnable;
    }

    pub(crate) fn release(&self, m: usize) {
        // Not a scheduling point: the next acquire/wait on any thread is.
        let mut inner = self.shared.lock();
        debug_assert_eq!(inner.mutexes[m].owner, Some(self.tid));
        inner.mutexes[m].owner = None;
    }

    // -- condvars ---------------------------------------------------------

    pub(crate) fn register_condvar(&self) -> usize {
        let mut inner = self.shared.lock();
        inner.condvars.push(CvState::default());
        inner.condvars.len() - 1
    }

    /// Atomically release mutex `m` and park on condvar `cv`; on return the
    /// thread has been notified and holds `m` again.
    pub(crate) fn condvar_wait(&self, cv: usize, m: usize) {
        self.yield_point();
        let mut inner = self.shared.lock();
        if inner.abort {
            drop(inner);
            self.unwind_abort();
        }
        debug_assert_eq!(inner.mutexes[m].owner, Some(self.tid));
        inner.mutexes[m].owner = None;
        inner.condvars[cv].waiters.push(self.tid);
        inner.threads[self.tid].state = TState::BlockedCondvar { cv, mutex: m };
        schedule_next(&self.shared, &mut inner, self.tid);
        // Woken only after a notify moved us to BlockedMutex(m) and the
        // scheduler saw m free.
        let mut inner = self.park(inner);
        debug_assert!(inner.mutexes[m].owner.is_none());
        inner.mutexes[m].owner = Some(self.tid);
        inner.threads[self.tid].state = TState::Runnable;
    }

    pub(crate) fn condvar_notify(&self, cv: usize, all: bool) {
        self.yield_point();
        let mut inner = self.shared.lock();
        inner.condvars[cv].notifies += 1;
        let n = if all {
            inner.condvars[cv].waiters.len()
        } else {
            inner.condvars[cv].waiters.len().min(1)
        };
        for _ in 0..n {
            let w = inner.condvars[cv].waiters.remove(0);
            let m = match inner.threads[w].state {
                TState::BlockedCondvar { mutex, .. } => mutex,
                ref other => unreachable!("condvar waiter in state {other:?}"),
            };
            inner.threads[w].state = TState::BlockedMutex(m);
        }
    }

    // -- threads ----------------------------------------------------------

    pub(crate) fn register_thread(&self, name: String) -> Handle {
        let mut inner = self.shared.lock();
        inner.threads.push(Trd {
            state: TState::Runnable,
            name,
        });
        inner.unfinished += 1;
        Handle {
            shared: Arc::clone(&self.shared),
            tid: inner.threads.len() - 1,
        }
    }

    pub(crate) fn push_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.shared.lock().os_handles.push(h);
    }

    /// Entry point of a freshly spawned virtual thread: park until first
    /// scheduled. Returns false if the execution aborted before that.
    pub(crate) fn wait_first_schedule(&self) -> bool {
        let mut inner = self.shared.lock();
        loop {
            if inner.abort {
                return false;
            }
            if inner.active == self.tid {
                return true;
            }
            inner = self
                .shared
                .cv
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark this virtual thread finished and hand the baton on.
    /// `panic_payload` carries a non-abort panic out of the thread body.
    pub(crate) fn finish_thread(&self, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut inner = self.shared.lock();
        inner.threads[self.tid].state = TState::Finished;
        inner.unfinished -= 1;
        if let Some(payload) = panic_payload {
            let text = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            let msg = format!(
                "thread {} `{}` panicked: {text}",
                self.tid, inner.threads[self.tid].name
            );
            record_failure(&mut inner, FailureKind::Panic, msg);
            self.shared.cv.notify_all();
            return;
        }
        if !inner.abort {
            schedule_next(&self.shared, &mut inner, self.tid);
        }
        self.shared.cv.notify_all();
    }

    pub(crate) fn join_thread(&self, target: usize) {
        self.yield_point();
        let mut inner = self.shared.lock();
        if inner.abort {
            drop(inner);
            self.unwind_abort();
        }
        if inner.threads[target].state == TState::Finished {
            return;
        }
        inner.threads[self.tid].state = TState::BlockedJoin(target);
        schedule_next(&self.shared, &mut inner, self.tid);
        let mut inner = self.park(inner);
        inner.threads[self.tid].state = TState::Runnable;
        debug_assert_eq!(inner.threads[target].state, TState::Finished);
    }
}

/// True if `payload` is the engine's abort token.
pub(crate) fn is_abort(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.downcast_ref::<AbortToken>().is_some()
}

// ---------------------------------------------------------------------------
// DFS over scheduling decisions
// ---------------------------------------------------------------------------

/// One frontier frame per recorded decision of the last execution.
struct Frame {
    /// Choice taken in the execution that created/last used this frame.
    choice: usize,
    /// First run at this frame took the DFS default; alternatives are the
    /// other indices in ascending order. `next_alt` is the scan position.
    next_alt: usize,
    default: usize,
    len: usize,
    current_in_runnable: Option<usize>,
    preemptions_before: usize,
}

struct Dfs {
    stack: Vec<Frame>,
    bound: usize,
}

impl Dfs {
    fn new(bound: usize) -> Self {
        Dfs {
            stack: Vec::new(),
            bound,
        }
    }

    /// Fold the decisions of the execution that just finished into the
    /// frontier, then compute the next schedule prefix. Returns `None` when
    /// the bounded space is exhausted.
    fn advance(&mut self, decisions: &[Decision]) -> Option<Vec<usize>> {
        // New decisions appear below the deepest frame we forced; record them.
        for d in decisions.iter().skip(self.stack.len()) {
            let default = d.current_idx.unwrap_or(0);
            self.stack.push(Frame {
                choice: d.chosen,
                next_alt: 0,
                default,
                len: d.runnable.len(),
                current_in_runnable: d.current_idx,
                preemptions_before: d.preemptions_before,
            });
        }
        // Backtrack to the deepest frame with an untried, in-bound alternative.
        while let Some(top) = self.stack.last_mut() {
            let mut found = None;
            while top.next_alt < top.len {
                let a = top.next_alt;
                top.next_alt += 1;
                if a == top.default {
                    continue; // explored on the first visit
                }
                let cost = match top.current_in_runnable {
                    Some(ci) if a != ci => top.preemptions_before + 1,
                    _ => top.preemptions_before,
                };
                if cost <= self.bound {
                    found = Some(a);
                    break;
                }
            }
            match found {
                Some(a) => {
                    top.choice = a;
                    let prefix: Vec<usize> = self.stack.iter().map(|f| f.choice).collect();
                    return Some(prefix);
                }
                None => {
                    self.stack.pop();
                }
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Explore `body` under `config`; panic (with a replayable schedule) on the
/// first failing interleaving. Returns the exploration [`Report`].
pub fn explore<F>(config: Config, body: F) -> Report
where
    F: Fn() + Send + Sync,
{
    let (report, failure) = run(config, &body);
    if let Some(f) = failure {
        panic!(
            "conc-check: {:?} on execution {} (after exploring {} interleaving(s))\n  {}\n  \
             replay schedule: {:?}",
            f.kind, f.execution, report.executions, f.message, f.schedule
        );
    }
    report
}

/// Like [`explore`] but returns the failure instead of panicking — used by
/// the checker's own known-bug fixtures.
pub fn explore_find_bug<F>(config: Config, body: F) -> (Report, Option<Failure>)
where
    F: Fn() + Send + Sync,
{
    run(config, &body)
}

fn run<F>(config: Config, body: &F) -> (Report, Option<Failure>)
where
    F: Fn() + Send + Sync,
{
    assert!(
        !in_execution(),
        "conccheck::explore is not reentrant from inside an execution"
    );
    let mut dfs = Dfs::new(config.preemption_bound);
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    let mut divergences = 0usize;
    let (random_iters, replay_once) = match &config.mode {
        Mode::Exhaustive => (None, false),
        Mode::Random { iterations, .. } => (Some(*iterations), false),
        Mode::Replay(sched) => {
            prefix = sched.clone();
            (None, true)
        }
    };

    loop {
        let shared = Arc::new(Shared {
            inner: StdMutex::new(Inner {
                threads: vec![Trd {
                    state: TState::Runnable,
                    name: "main".to_string(),
                }],
                unfinished: 1,
                active: 0,
                steps: 0,
                preemptions: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                decisions: Vec::new(),
                prefix: prefix.clone(),
                cursor: 0,
                divergences: 0,
                random: match &config.mode {
                    Mode::Random { seed, .. } => Some(
                        (seed ^ 0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((executions as u64).wrapping_mul(0x2545_f491_4f6c_dd1d))
                            | 1,
                    ),
                    _ => None,
                },
                max_steps: config.max_steps,
                yield_on_atomics: config.yield_on_atomics,
                failure: None,
                abort: false,
                execution: executions,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });
        let driver = Handle {
            shared: Arc::clone(&shared),
            tid: 0,
        };

        set_current(Some(driver.clone()));
        let body_result = catch_unwind(AssertUnwindSafe(body));
        match body_result {
            Ok(()) => driver.finish_thread(None),
            Err(payload) if is_abort(payload.as_ref()) => driver.finish_thread(None),
            Err(payload) => driver.finish_thread(Some(payload)),
        }

        // Wait for the remaining virtual threads to finish or fail.
        {
            let mut inner = shared.lock();
            while inner.unfinished > 0 && inner.failure.is_none() {
                inner = shared.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        // Tear down: release any parked threads and join all OS threads.
        let os_handles = {
            let mut inner = shared.lock();
            inner.abort = true;
            shared.cv.notify_all();
            std::mem::take(&mut inner.os_handles)
        };
        for h in os_handles {
            let _ = h.join();
        }
        set_current(None);

        executions += 1;
        let (failure, decisions, run_divergences) = {
            let mut inner = shared.lock();
            (
                inner.failure.take(),
                std::mem::take(&mut inner.decisions),
                inner.divergences,
            )
        };
        divergences += run_divergences;

        if let Some(f) = failure {
            let report = Report {
                executions,
                complete: false,
                divergences,
            };
            return (report, Some(f));
        }

        match (&config.mode, random_iters) {
            (Mode::Replay(_), _) => {
                debug_assert!(replay_once);
                return (
                    Report {
                        executions,
                        complete: true,
                        divergences,
                    },
                    None,
                );
            }
            (Mode::Random { .. }, Some(iters)) => {
                if executions >= iters {
                    return (
                        Report {
                            executions,
                            complete: false,
                            divergences,
                        },
                        None,
                    );
                }
            }
            _ => {
                // Exhaustive DFS.
                if executions >= config.max_executions {
                    return (
                        Report {
                            executions,
                            complete: false,
                            divergences,
                        },
                        None,
                    );
                }
                match dfs.advance(&decisions) {
                    Some(next) => prefix = next,
                    None => {
                        return (
                            Report {
                                executions,
                                complete: true,
                                divergences,
                            },
                            None,
                        );
                    }
                }
            }
        }
    }
}
