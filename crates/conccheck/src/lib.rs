//! `dcover-conccheck` — an in-repo bounded model checker for the
//! scheduler/service concurrency stack.
//!
//! The checker runs a closure (the *scenario body*) many times, forcing a
//! different thread interleaving on each run. Concurrency inside the body
//! must go through the model primitives in [`sync`], [`sync::atomic`], and
//! [`thread`] (normally via the `dcover_congest::sync` facade compiled with
//! `--cfg conc_check`). Every lock acquire, condvar wait/notify, atomic
//! operation, spawn, and join is a *scheduling point*: exactly one virtual
//! thread runs at a time (real OS threads passing a baton through one global
//! mutex/condvar pair), and at each point where more than one thread could
//! run, the active [`Strategy`](Mode) decides who goes next.
//!
//! Exploration modes:
//!
//! * **Exhaustive** — depth-first search over scheduling decisions with a
//!   *preemption bound*: at most `preemption_bound` involuntary switches
//!   (switching away from a thread that could have kept running) per
//!   execution. Small bounds (2–3) are known to catch the vast majority of
//!   real concurrency bugs while keeping the state space tractable.
//! * **Random** — seeded xorshift random walk, uniform over the runnable
//!   set at every decision point, no preemption bound. Used for scenarios
//!   whose behaviour depends on wall-clock time and therefore cannot be
//!   replayed deterministically.
//! * **Replay** — re-run one recorded schedule (printed by a failure) for
//!   debugging.
//!
//! Detected failures: **deadlock** (unfinished threads, none runnable),
//! **lost wakeup** (a deadlock in which some thread is parked on a condvar
//! that has been notified at least once — the notification raced past it),
//! **panic** in any virtual thread (assertion hooks such as the pool's
//! exactly-once ticket ledger surface this way), and a **step-limit** breach
//! (livelock guard).
//!
//! The model is sequentially consistent: model atomics execute at `SeqCst`
//! regardless of the ordering argument, so weak-memory reorderings are *not*
//! explored. `conc-check` finds interleaving bugs (races on the order of
//! lock/unlock/notify/check), not relaxed-ordering bugs; the latter are
//! covered by the `Ordering` audit documented in `CONCURRENCY.md`.
//!
//! Outside of [`explore`] the model primitives degrade to plain `std::sync`
//! behaviour, so code built with `--cfg conc_check` still runs normally.

#![forbid(unsafe_code)]

mod exec;
pub mod sync;
pub mod thread;

pub use exec::{
    explore, explore_find_bug, in_execution, Config, Failure, FailureKind, Mode, Report,
};
