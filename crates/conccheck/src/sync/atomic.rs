//! Model atomics: same API shape as `std::sync::atomic`, but every
//! operation performed inside an execution is (optionally) a scheduling
//! point, and all operations execute at `SeqCst` regardless of the
//! requested ordering — the model is sequentially consistent and does not
//! explore weak-memory reorderings. Outside an execution they are plain
//! std atomics honouring the requested ordering.

pub use std::sync::atomic::Ordering;

use crate::exec;
use std::sync::atomic::{AtomicBool as StdAtomicBool, AtomicU64 as StdAtomicU64};

macro_rules! model_atomic {
    ($name:ident, $std:ident, $prim:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub const fn new(value: $prim) -> Self {
                $name {
                    inner: $std::new(value),
                }
            }

            fn point(&self) {
                if let Some(h) = exec::current() {
                    h.atomic_point();
                }
            }

            pub fn load(&self, order: Ordering) -> $prim {
                self.point();
                if exec::in_execution() {
                    self.inner.load(Ordering::SeqCst)
                } else {
                    self.inner.load(order)
                }
            }

            pub fn store(&self, value: $prim, order: Ordering) {
                self.point();
                if exec::in_execution() {
                    self.inner.store(value, Ordering::SeqCst)
                } else {
                    self.inner.store(value, order)
                }
            }

            pub fn swap(&self, value: $prim, order: Ordering) -> $prim {
                self.point();
                if exec::in_execution() {
                    self.inner.swap(value, Ordering::SeqCst)
                } else {
                    self.inner.swap(value, order)
                }
            }
        }
    };
}

model_atomic!(AtomicBool, StdAtomicBool, bool);
model_atomic!(AtomicU64, StdAtomicU64, u64);

impl AtomicU64 {
    pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
        self.point();
        if exec::in_execution() {
            self.inner.fetch_add(value, Ordering::SeqCst)
        } else {
            self.inner.fetch_add(value, order)
        }
    }

    pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
        self.point();
        if exec::in_execution() {
            self.inner.fetch_max(value, Ordering::SeqCst)
        } else {
            self.inner.fetch_max(value, order)
        }
    }
}
