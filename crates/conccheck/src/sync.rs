//! Model `Mutex` and `Condvar`: drop-in replacements for the `std::sync`
//! pair that route blocking through the conc-check scheduler when used
//! inside [`explore`](crate::explore), and behave exactly like `std`
//! otherwise.
//!
//! A primitive binds itself to an execution lazily, on first use: used
//! first inside an execution it becomes a *model* primitive of that
//! execution; used first outside it is a plain passthrough forever. Create
//! primitives inside the scenario body — using a model primitive from a
//! different execution (or from a non-model thread) panics.
//!
//! Data still lives in a real `std::sync::Mutex`, so there is no `unsafe`
//! anywhere: the model guarantees at most one virtual thread runs at a
//! time, which makes the inner lock uncontended in model mode.

pub mod atomic;

use crate::exec::{self, Handle};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock,
    PoisonError,
};

enum Reg {
    Model { origin: Handle, id: usize },
    Passthrough,
}

impl Reg {
    /// The handle to use for a model operation right now, or `None` for
    /// passthrough behaviour.
    fn model_handle(&self) -> Option<(Handle, usize)> {
        match self {
            Reg::Passthrough => None,
            Reg::Model { origin, id } => {
                let h = exec::current().expect(
                    "conc-check model primitive used from a thread outside the execution \
                     (spawn threads via the facade, create primitives inside the body)",
                );
                assert!(
                    h.same_exec(origin),
                    "conc-check model primitive reused across executions \
                     (create primitives inside the scenario body)"
                );
                Some((h, *id))
            }
        }
    }
}

fn register(kind: fn(&Handle) -> usize) -> Reg {
    match exec::current() {
        Some(h) => {
            let id = kind(&h);
            Reg::Model { origin: h, id }
        }
        None => Reg::Passthrough,
    }
}

/// Model mutex. See the module docs for binding rules.
pub struct Mutex<T: ?Sized> {
    reg: OnceLock<Reg>,
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            reg: OnceLock::new(),
            data: StdMutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let reg = self.reg.get_or_init(|| register(Handle::register_mutex));
        match reg.model_handle() {
            Some((h, id)) => {
                let owned = if std::thread::panicking() {
                    h.acquire_tolerant(id)
                } else {
                    h.acquire(id);
                    true
                };
                // Uncontended in model mode (single active virtual thread);
                // poison-tolerant because failures propagate via the engine.
                let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: owned.then_some((h, id)),
                })
            }
            None => match self.data.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: None,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: None,
                })),
            },
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases model ownership (when held) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: Option<(Handle, usize)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the real guard first, then release model ownership: nothing
        // can observe the window because only this virtual thread runs.
        drop(self.inner.take());
        if let Some((h, id)) = self.model.take() {
            h.release(id);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Model condvar paired with [`Mutex`].
pub struct Condvar {
    reg: OnceLock<Reg>,
    fallback: StdCondvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar {
            reg: OnceLock::new(),
            fallback: StdCondvar::new(),
        }
    }

    fn reg(&self) -> &Reg {
        self.reg.get_or_init(|| register(Handle::register_condvar))
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.reg().model_handle() {
            Some((h, cv)) => {
                let (_gh, mutex_id) = guard
                    .model
                    .take()
                    .expect("model condvar waited with a passthrough mutex guard");
                let lock = guard.lock;
                // Release the real lock; the model release happens atomically
                // with waiter registration inside condvar_wait.
                drop(guard.inner.take());
                drop(guard);
                if std::thread::panicking() {
                    // Degraded teardown path: behave as a spurious wakeup.
                    let owned = h.acquire_tolerant(mutex_id);
                    let inner = lock.data.lock().unwrap_or_else(|e| e.into_inner());
                    return Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: owned.then_some((h, mutex_id)),
                    });
                }
                h.condvar_wait(cv, mutex_id);
                let inner = lock.data.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    lock,
                    inner: Some(inner),
                    model: Some((h, mutex_id)),
                })
            }
            None => {
                assert!(
                    guard.model.is_none(),
                    "passthrough condvar waited with a model mutex guard"
                );
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard accessed after wait");
                drop(guard);
                match self.fallback.wait(std_guard) {
                    Ok(inner) => Ok(MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(poisoned.into_inner()),
                        model: None,
                    })),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        match self.reg().model_handle() {
            Some((h, cv)) => {
                if std::thread::panicking() {
                    h.notify_tolerant(cv, false);
                } else {
                    h.condvar_notify(cv, false);
                }
            }
            None => self.fallback.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match self.reg().model_handle() {
            Some((h, cv)) => {
                if std::thread::panicking() {
                    h.notify_tolerant(cv, true);
                } else {
                    h.condvar_notify(cv, true);
                }
            }
            None => self.fallback.notify_all(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
