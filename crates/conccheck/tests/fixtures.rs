//! Known-bug fixtures: the checker must find each seeded bug within the
//! preemption bound, and report nothing on a correct program. These run
//! under the normal test harness (tier-1) — the model primitives are used
//! directly, no `--cfg conc_check` needed.

use dcover_conccheck::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use dcover_conccheck::sync::{Condvar, Mutex};
use dcover_conccheck::{explore, explore_find_bug, thread, Config, FailureKind, Mode};
use std::sync::Arc;

/// A deliberately racy two-thread counter: read-modify-write through a
/// non-atomic load/store pair. The checker must produce an interleaving
/// where one increment is lost, caught by the final assertion.
#[test]
fn detects_racy_counter() {
    let (report, failure) = explore_find_bug(Config::exhaustive(2, 2000), || {
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                // Racy: load then store instead of fetch_add.
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    let failure = failure.expect("checker must find the lost increment");
    assert_eq!(failure.kind, FailureKind::Panic, "{failure:?}");
    assert!(
        failure.message.contains("an increment was lost"),
        "{failure:?}"
    );
    assert!(report.executions >= 2, "needs >1 interleaving to manifest");

    // The failing schedule must reproduce deterministically.
    let (_, replayed) = explore_find_bug(
        Config {
            mode: Mode::Replay(failure.schedule.clone()),
            ..Config::default()
        },
        || {
            let counter = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let counter = Arc::clone(&counter);
                handles.push(thread::spawn(move || {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
        },
    );
    assert_eq!(
        replayed.expect("replay must reproduce the failure").kind,
        FailureKind::Panic
    );
}

/// Lost wakeup: the waiter decides to sleep based on a flag read *before*
/// taking the lock, so the notify can land in the window between the read
/// and the wait — after which nobody ever notifies again.
#[test]
fn detects_lost_wakeup() {
    let (_, failure) = explore_find_bug(Config::exhaustive(2, 2000), || {
        let ready = Arc::new(AtomicBool::new(false));
        let pair = Arc::new((Mutex::new(()), Condvar::new()));

        let notifier = {
            let ready = Arc::clone(&ready);
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                ready.store(true, Ordering::SeqCst);
                pair.1.notify_one();
            })
        };

        if !ready.load(Ordering::SeqCst) {
            // Buggy: the check happened outside the lock, and the wait is
            // unconditional — a notify between the check and here is lost.
            let guard = pair.0.lock().unwrap();
            drop(pair.1.wait(guard).unwrap());
        }
        notifier.join().unwrap();
    });
    let failure = failure.expect("checker must find the lost wakeup");
    assert_eq!(failure.kind, FailureKind::LostWakeup, "{failure:?}");
}

/// Classic ABBA deadlock: two threads taking two locks in opposite orders.
#[test]
fn detects_abba_deadlock() {
    let (_, failure) = explore_find_bug(Config::exhaustive(2, 2000), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let t = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
                drop((ga, gb));
            })
        };
        let gb = b.lock().unwrap();
        let ga = a.lock().unwrap();
        drop((gb, ga));
        t.join().unwrap();
    });
    let failure = failure.expect("checker must find the ABBA deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock, "{failure:?}");
    assert!(failure.message.contains("blocked on mutex"), "{failure:?}");
}

/// The same shapes written correctly must come up clean — no false
/// positives, and exhaustive mode must actually finish.
#[test]
fn clean_fixture_no_false_positives() {
    let report = explore(Config::exhaustive(2, 20_000), || {
        let counter = Arc::new(AtomicU64::new(0));
        let pair = Arc::new((Mutex::new(false), Condvar::new()));

        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }));
        }
        let signaller = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                *pair.0.lock().unwrap() = true;
                pair.1.notify_all();
            })
        };

        // Correct condvar discipline: condition checked under the lock.
        let mut done = pair.0.lock().unwrap();
        while !*done {
            done = pair.1.wait(done).unwrap();
        }
        drop(done);

        for h in handles {
            h.join().unwrap();
        }
        signaller.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(
        report.complete,
        "state space should be exhausted: {report:?}"
    );
    assert!(report.executions > 10, "should explore many interleavings");
}

/// Random mode finds the racy counter too (depth without exhaustion).
#[test]
fn random_mode_detects_racy_counter() {
    let (_, failure) = explore_find_bug(Config::random(0xDC0DE5, 300), || {
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let v = counter.load(Ordering::SeqCst);
                counter.store(v + 1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    assert!(failure.is_some(), "random walk should hit the race");
}

/// Model primitives degrade to plain std behaviour outside `explore`.
#[test]
fn passthrough_outside_execution() {
    let m = Arc::new(Mutex::new(0u32));
    let cv = Arc::new(Condvar::new());
    let flag = Arc::new(AtomicBool::new(false));
    let t = {
        let m = Arc::clone(&m);
        let cv = Arc::clone(&cv);
        let flag = Arc::clone(&flag);
        thread::spawn(move || {
            *m.lock().unwrap() = 7;
            flag.store(true, Ordering::Release);
            cv.notify_all();
        })
    };
    let mut g = m.lock().unwrap();
    while *g != 7 {
        g = cv.wait(g).unwrap();
    }
    drop(g);
    t.join().unwrap();
    assert!(flag.load(Ordering::Acquire));
}
