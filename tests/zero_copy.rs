//! Proves every serving path is **zero-copy**: submitting an instance to
//! the solve service — shared, batched, or borrowed from a slice — never
//! copies the hypergraph payload.
//!
//! `dcover_hypergraph::clone_count()` counts every deep `Hypergraph`
//! payload copy process-wide. Since the CSR payload moved behind a shared
//! allocation, `Hypergraph::clone` itself is a refcount bump, which is
//! what lets the borrowed-slice `solve_batch` path (pinned at 1
//! copy/instance in PR 3) tighten to **0**. The counter is global, so
//! this file holds exactly one test: the no-copy window must not race
//! with other tests that legitimately deep-copy.

use std::sync::Arc;

use dcover_core::{MwhvcSolver, SolveService, SolveSession};
use dcover_hypergraph::clone_count;
use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn arc_submission_paths_never_clone_the_instance_payload() {
    let mut rng = StdRng::seed_from_u64(4242);
    let g = Arc::new(random_uniform(
        &RandomUniform {
            n: 60,
            m: 140,
            rank: 3,
            weights: WeightDist::Uniform { min: 1, max: 30 },
        },
        &mut rng,
    ));
    let reference = MwhvcSolver::with_epsilon(0.5)
        .unwrap()
        .solve(&g)
        .expect("reference solve");

    // --- SolveService::submit / try_submit: zero deep clones. ---
    let service = SolveService::with_epsilon(0.5, 4).unwrap();
    let before = clone_count();
    let tickets: Vec<_> = (0..16)
        .map(|i| {
            if i % 2 == 0 {
                service.submit(Arc::clone(&g), 0.5).unwrap()
            } else {
                service.try_submit(&g, 0.5).unwrap()
            }
        })
        .collect();
    for t in tickets {
        let r = t.wait().unwrap();
        assert_eq!(r.cover, reference.cover);
        assert_eq!(r.duals, reference.duals);
    }
    assert_eq!(
        clone_count() - before,
        0,
        "service submission deep-cloned an Arc'd instance"
    );

    // --- SolveSession::solve_batch_shared: zero deep clones. ---
    let mut session = SolveSession::with_epsilon(0.5, 4).unwrap();
    let shared: Vec<Arc<dcover_hypergraph::Hypergraph>> = (0..8).map(|_| Arc::clone(&g)).collect();
    let before = clone_count();
    let results = session.solve_batch_shared(&shared);
    for r in &results {
        assert_eq!(r.as_ref().unwrap().cover, reference.cover);
    }
    assert_eq!(
        clone_count() - before,
        0,
        "solve_batch_shared deep-cloned an Arc'd instance"
    );
    drop(shared);
    drop(service);
    drop(session);

    // Every Arc handle the serving layers took has been released: the
    // caller's handle is the only one left (no hidden retained copies —
    // including the service's delta result cache, which dies with it).
    assert_eq!(Arc::strong_count(&g), 1);

    // The borrowed-slice batch is now zero-copy too: each borrowed
    // instance is Arc-wrapped as a shared handle (the payload lives
    // behind its own shared allocation), closing PR 3's documented
    // "1 clone/instance" limitation.
    let mut session = SolveSession::with_epsilon(0.5, 2).unwrap();
    let slice = [Arc::try_unwrap(g).expect("sole owner")];
    let before = clone_count();
    let results = session.solve_batch(&slice);
    assert!(results[0].is_ok());
    assert_eq!(
        clone_count() - before,
        0,
        "the slice path no longer copies instance payloads"
    );

    // Deep copies still exist — but only on explicit request.
    let before = clone_count();
    let copy = slice[0].deep_clone();
    assert_eq!(clone_count() - before, 1);
    assert_eq!(copy, slice[0]);
}
