//! Property-based tests for the Section 5 reductions: the zero-one
//! reduction and binary expansion preserve feasibility and cost exactly,
//! and the end-to-end distributed ILP solver stays within its certified
//! guarantee against exact optima.

use distributed_covering::core::MwhvcConfig;
use distributed_covering::hypergraph::{Cover, VertexId};
use distributed_covering::ilp::{
    expand_binary, reduce_zero_one, solve_ilp_exact, CoveringIlp, IlpBuilder, IlpSolver,
};
use proptest::prelude::*;

/// Strategy: a small random covering ILP with ≤ 7 variables, ≤ 8
/// constraints, row support ≤ 3, coefficients ≤ 4, b ≤ 8 (clamped for
/// zero-one feasibility when asked).
fn arb_ilp(zero_one: bool) -> impl Strategy<Value = CoveringIlp> {
    (1usize..=7)
        .prop_flat_map(move |n| {
            (
                proptest::collection::vec(1u64..=9, n),
                proptest::collection::vec(
                    (
                        proptest::collection::vec((0usize..n, 1u64..=4), 1..=3),
                        1u64..=8,
                    ),
                    0..=8,
                ),
            )
        })
        .prop_map(move |(weights, rows)| {
            let mut b = IlpBuilder::new();
            for w in weights {
                b.add_variable(w);
            }
            for (terms, bi) in rows {
                let sum: u64 = terms.iter().map(|&(_, c)| c).sum();
                let bi = if zero_one { bi.min(sum) } else { bi };
                b.add_constraint(terms, bi).expect("in range");
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lemma 14, exhaustively: for every 0/1 assignment, ILP feasibility ⇔
    /// the support is a vertex cover of the reduced hypergraph.
    #[test]
    fn lemma14_equivalence(ilp in arb_ilp(true)) {
        let n = ilp.num_variables();
        let red = reduce_zero_one(&ilp, 24).unwrap();
        for mask in 0u32..(1u32 << n) {
            let x: Vec<u64> = (0..n).map(|j| u64::from(mask >> j & 1)).collect();
            let cover = Cover::from_ids(n, (0..n).filter(|&j| x[j] == 1).map(VertexId::new));
            prop_assert_eq!(
                ilp.is_feasible(&x),
                cover.is_cover_of(&red.hypergraph),
                "mask {:b}", mask
            );
        }
    }

    /// Claim 18, exhaustively on small bit spaces: expanded feasibility and
    /// cost match the lifted original.
    #[test]
    fn claim18_equivalence(ilp in arb_ilp(false)) {
        prop_assume!(ilp.check_feasible().is_ok());
        let exp = expand_binary(&ilp).unwrap();
        let nb = exp.zero_one.num_variables();
        prop_assume!(nb <= 14); // 2^14 assignments max
        for mask in 0u32..(1u32 << nb) {
            let bits: Vec<u64> = (0..nb).map(|t| u64::from(mask >> t & 1)).collect();
            let x = exp.lift(&bits);
            prop_assert_eq!(exp.zero_one.is_feasible(&bits), ilp.is_feasible(&x));
            prop_assert_eq!(exp.zero_one.cost(&bits), ilp.cost(&x));
        }
    }

    /// End to end: the distributed solution is feasible and within the
    /// certified ratio of the exact optimum.
    #[test]
    fn solver_within_certificate(ilp in arb_ilp(false)) {
        prop_assume!(ilp.check_feasible().is_ok());
        let out = IlpSolver::new(MwhvcConfig::new(0.5).unwrap()).solve(&ilp).unwrap();
        prop_assert!(ilp.is_feasible(&out.assignment));
        let exact = solve_ilp_exact(&ilp, 2_000_000);
        prop_assume!(exact.optimal);
        prop_assert!(exact.cost <= out.cost);
        // The dual certificate bounds the true ratio.
        if exact.cost > 0 {
            let true_ratio = out.cost as f64 / exact.cost as f64;
            prop_assert!(true_ratio <= out.certified_ratio() + 1e-9);
            let rank_bound = f64::from(out.zo_stats.rank.max(1)) + 0.5;
            prop_assert!(out.certified_ratio() <= rank_bound + 1e-9);
        }
    }
}
