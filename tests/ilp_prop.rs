//! Property-based tests (seeded random) for the Section 5 reductions: the
//! zero-one reduction and binary expansion preserve feasibility and cost
//! exactly, and the end-to-end distributed ILP solver stays within its
//! certified guarantee against exact optima.

use distributed_covering::core::MwhvcConfig;
use distributed_covering::hypergraph::{Cover, VertexId};
use distributed_covering::ilp::{
    expand_binary, reduce_zero_one, solve_ilp_exact, CoveringIlp, IlpBuilder, IlpSolver,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random covering ILP with ≤ 7 variables, ≤ 8 constraints, row
/// support ≤ 3, coefficients ≤ 4, b ≤ 8 (clamped for zero-one feasibility
/// when asked).
fn random_ilp_instance(rng: &mut StdRng, zero_one: bool) -> CoveringIlp {
    let n = rng.gen_range(1usize..=7);
    let mut b = IlpBuilder::new();
    for _ in 0..n {
        b.add_variable(rng.gen_range(1u64..=9));
    }
    for _ in 0..rng.gen_range(0usize..=8) {
        let support = rng.gen_range(1usize..=3);
        let terms: Vec<(usize, u64)> = (0..support)
            .map(|_| (rng.gen_range(0usize..n), rng.gen_range(1u64..=4)))
            .collect();
        let sum: u64 = terms.iter().map(|&(_, c)| c).sum();
        let mut bi = rng.gen_range(1u64..=8);
        if zero_one {
            bi = bi.min(sum);
        }
        b.add_constraint(terms, bi).expect("in range");
    }
    b.build()
}

/// Lemma 14, exhaustively: for every 0/1 assignment, ILP feasibility ⇔
/// the support is a vertex cover of the reduced hypergraph.
#[test]
fn lemma14_equivalence() {
    let mut rng = StdRng::seed_from_u64(0x11_22);
    for case in 0..40 {
        let ilp = random_ilp_instance(&mut rng, true);
        let n = ilp.num_variables();
        let red = reduce_zero_one(&ilp, 24).unwrap();
        for mask in 0u32..(1u32 << n) {
            let x: Vec<u64> = (0..n).map(|j| u64::from(mask >> j & 1)).collect();
            let cover = Cover::from_ids(n, (0..n).filter(|&j| x[j] == 1).map(VertexId::new));
            assert_eq!(
                ilp.is_feasible(&x),
                cover.is_cover_of(&red.hypergraph),
                "case {case} mask {mask:b}"
            );
        }
    }
}

/// Claim 18, exhaustively on small bit spaces: expanded feasibility and
/// cost match the lifted original.
#[test]
fn claim18_equivalence() {
    let mut rng = StdRng::seed_from_u64(0x33_44);
    let mut checked = 0;
    while checked < 40 {
        let ilp = random_ilp_instance(&mut rng, false);
        if ilp.check_feasible().is_err() {
            continue;
        }
        let exp = expand_binary(&ilp).unwrap();
        let nb = exp.zero_one.num_variables();
        if nb > 14 {
            // 2^14 assignments max per case.
            continue;
        }
        checked += 1;
        for mask in 0u32..(1u32 << nb) {
            let bits: Vec<u64> = (0..nb).map(|t| u64::from(mask >> t & 1)).collect();
            let x = exp.lift(&bits);
            assert_eq!(exp.zero_one.is_feasible(&bits), ilp.is_feasible(&x));
            assert_eq!(exp.zero_one.cost(&bits), ilp.cost(&x));
        }
    }
}

/// End to end: the distributed solution is feasible and within the
/// certified ratio of the exact optimum.
#[test]
fn solver_within_certificate() {
    let mut rng = StdRng::seed_from_u64(0x55_66);
    let mut checked = 0;
    while checked < 40 {
        let ilp = random_ilp_instance(&mut rng, false);
        if ilp.check_feasible().is_err() {
            continue;
        }
        checked += 1;
        let out = IlpSolver::new(MwhvcConfig::new(0.5).unwrap())
            .solve(&ilp)
            .unwrap();
        assert!(ilp.is_feasible(&out.assignment));
        let exact = solve_ilp_exact(&ilp, 2_000_000);
        if !exact.optimal {
            continue;
        }
        assert!(exact.cost <= out.cost);
        // The dual certificate bounds the true ratio.
        if exact.cost > 0 {
            let true_ratio = out.cost as f64 / exact.cost as f64;
            assert!(true_ratio <= out.certified_ratio() + 1e-9);
            let rank_bound = f64::from(out.zo_stats.rank.max(1)) + 0.5;
            assert!(out.certified_ratio() <= rank_bound + 1e-9);
        }
    }
}
