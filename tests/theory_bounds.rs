//! The paper's quantitative claims, checked with explicit constants:
//! Theorem 8 (iteration bound), Claim 4 (level bound), the CONGEST message
//! budget, and Corollary 10's O(f log n) mode.

use distributed_covering::congest::BitBudget;
use distributed_covering::core::analysis::{iteration_bound, round_bound};
use distributed_covering::core::{
    theorem9_alpha, z_levels, AlphaPolicy, MwhvcConfig, MwhvcSolver, Variant,
};
use distributed_covering::hypergraph::generators::{
    hyper_star, random_uniform, RandomUniform, WeightDist,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Theorem 8: iterations ≤ log_α(Δ·2^{fz}) + Σ_v stuck ≤ the explicit
/// bound, for every α. Run with exact (not safety-padded) limits.
#[test]
fn theorem8_iteration_bound_holds() {
    let mut rng = StdRng::seed_from_u64(20);
    for alpha in [2u32, 3, 8, 32] {
        for (f, eps) in [(2usize, 1.0), (3, 0.5), (5, 0.2)] {
            let g = random_uniform(
                &RandomUniform {
                    n: 70,
                    m: 180,
                    rank: f,
                    weights: WeightDist::Uniform { min: 1, max: 1000 },
                },
                &mut rng,
            );
            let cfg = MwhvcConfig::new(eps)
                .unwrap()
                .with_alpha(AlphaPolicy::Fixed(alpha));
            let r = MwhvcSolver::new(cfg).solve(&g).unwrap();
            let bound = iteration_bound(f as u32, g.max_degree(), eps, alpha, Variant::Standard);
            assert!(
                r.iterations <= bound,
                "Theorem 8 violated: {} > {bound} (f={f}, eps={eps}, alpha={alpha})",
                r.iterations
            );
            assert!(
                r.report.rounds
                    <= round_bound(f as u32, g.max_degree(), eps, alpha, Variant::Standard)
            );
        }
    }
}

/// Claim 4: no vertex level ever reaches z = ⌈log 1/β⌉.
#[test]
fn claim4_levels_below_z() {
    let mut rng = StdRng::seed_from_u64(21);
    for (f, eps) in [(2u32, 1.0), (3, 0.1), (4, 0.01)] {
        let g = random_uniform(
            &RandomUniform {
                n: 60,
                m: 150,
                rank: f as usize,
                weights: WeightDist::PowersOfTwo { max: 4096 },
            },
            &mut rng,
        );
        let r = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
        let z = z_levels(f, eps);
        for (vi, &level) in r.levels.iter().enumerate() {
            assert!(level < z, "vertex {vi} reached level {level} ≥ z = {z}");
        }
    }
}

/// Appendix B: every message fits in O(log n) bits. We assert against the
/// conventional budget 32·⌈log₂ N⌉ and additionally that the recorded peak
/// is far below it on poly-weight instances.
#[test]
fn congest_budget_respected() {
    let mut rng = StdRng::seed_from_u64(22);
    let g = random_uniform(
        &RandomUniform {
            n: 300,
            m: 700,
            rank: 3,
            weights: WeightDist::Uniform {
                min: 1,
                max: 1_000_000,
            },
        },
        &mut rng,
    );
    let budget = BitBudget::congest(g.n() + g.m(), 32);
    let cfg = MwhvcConfig::new(0.5).unwrap().with_budget(budget);
    let r = MwhvcSolver::new(cfg).solve(&g).unwrap();
    assert!(r.report.max_link_bits <= budget.bits());
    // Weight (20 bits) + degree (~4 bits) + alpha + tag ≈ 40 bits is the
    // biggest message on this instance; the budget has ample headroom.
    assert!(r.report.max_link_bits < budget.bits() / 2);
}

/// Corollary 10: with ε = 1/(nW) the run yields an f-approximation whose
/// measured rounds stay within an explicit c·f·log(nW) budget.
#[test]
fn corollary10_f_approximation() {
    let mut rng = StdRng::seed_from_u64(23);
    for f in [2usize, 3] {
        let wmax = 1000u64;
        let g = random_uniform(
            &RandomUniform {
                n: 200,
                m: 500,
                rank: f,
                weights: WeightDist::Uniform { min: 1, max: wmax },
            },
            &mut rng,
        );
        let cfg = MwhvcConfig::f_approximation(g.n(), wmax).unwrap();
        let r = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
        // f-approximation: ratio certificate within f (+ the 1/(nW) slack).
        assert!(r.ratio_upper_bound() <= f as f64 + 1e-3);
        // O(f log(nW)) with the explicit constants of Theorem 8 at α = 2:
        // iterations ≤ log2 Δ + fz + 3fz + 2 with z ≤ log2(2(f+1)·nW).
        let z = f64::from(z_levels(f as u32, cfg.epsilon()));
        let bound = (f64::from(g.max_degree()).log2() + 4.0 * (f as f64) * z + 2.0).ceil() as u64;
        assert!(
            r.iterations <= bound,
            "Cor. 10 budget exceeded: {} > {bound}",
            r.iterations
        );
    }
}

/// Theorem 9's α: for extreme Δ and tiny f·log(f/ε), α grows and the raise
/// count shrinks — verify the policy picks larger α on a deep star and that
/// the run still meets the α-specific bound.
#[test]
fn theorem9_alpha_scales_and_bound_holds() {
    let a_small = theorem9_alpha(1, 1.0, 64, 0.001);
    let a_big = theorem9_alpha(1, 1.0, 1 << 30, 0.001);
    assert!(a_big > a_small);

    let g = hyper_star(2, 4096, 1 << 13);
    let cfg = MwhvcConfig::new(1.0).unwrap(); // Theorem 9 policy by default
    let r = MwhvcSolver::new(cfg).solve(&g).unwrap();
    let alpha = theorem9_alpha(g.rank(), 1.0, g.max_degree(), 0.001);
    let bound = iteration_bound(g.rank(), g.max_degree(), 1.0, alpha, Variant::Standard);
    assert!(r.iterations <= bound);
    assert!(r.cover.is_cover_of(&g));
}

/// HalfBid obeys its own (doubled) bound from Lemma 22.
#[test]
fn halfbid_bound_holds() {
    let mut rng = StdRng::seed_from_u64(24);
    let g = random_uniform(
        &RandomUniform {
            n: 60,
            m: 160,
            rank: 4,
            weights: WeightDist::Uniform { min: 1, max: 512 },
        },
        &mut rng,
    );
    let cfg = MwhvcConfig::new(0.25)
        .unwrap()
        .with_variant(Variant::HalfBid)
        .with_alpha(AlphaPolicy::Fixed(2));
    let r = MwhvcSolver::new(cfg).solve(&g).unwrap();
    let bound = iteration_bound(4, g.max_degree(), 0.25, 2, Variant::HalfBid);
    assert!(r.iterations <= bound, "{} > {bound}", r.iterations);
}
