//! End-to-end warm-start equivalence over **every generator family**: for
//! each family, a mutation stream of ≥ 8 deltas is re-solved warm
//! (each revision seeded from the previous revision's result, exactly the
//! incremental serving shape) and every warm result must
//!
//! * pass [`Certificate::verify`] — coverage, dual feasibility,
//!   β-tightness — against its own revision, and
//! * respect the `(f + ε)` approximation bound `w(C) ≤ (f+ε)·Σδ`,
//!
//! while a warm solve with an **empty** delta must be bit-identical to
//! re-solving the unchanged instance cold (cover, duals, levels, weight,
//! dual total).

use dcover_core::{approximation_holds, Certificate, MwhvcSolver, WarmState, DEFAULT_TOLERANCE};
use dcover_hypergraph::generators::{
    calibrated_degree, clique, complete_f_partite, coverage_instance, cycle, hyper_star, path,
    planted_cover, preferential_attachment, random_mixed_rank, random_uniform, star, sunflower,
    RandomUniform, WeightDist,
};
use dcover_hypergraph::{EdgeId, Hypergraph, InstanceDelta, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPSILON: f64 = 0.5;
const DELTAS_PER_FAMILY: usize = 8;

/// One instance per `dcover gen` family (small enough to keep the stream
/// fast, structured enough to exercise each family's shape).
fn family_instances(rng: &mut StdRng) -> Vec<(&'static str, Hypergraph)> {
    let w = WeightDist::Uniform { min: 1, max: 30 };
    vec![
        (
            "uniform",
            random_uniform(
                &RandomUniform {
                    n: 40,
                    m: 100,
                    rank: 3,
                    weights: w.clone(),
                },
                rng,
            ),
        ),
        ("mixed", random_mixed_rank(40, 90, 2, 4, &w, rng)),
        ("planted", planted_cover(40, 80, 3, 6, 9, rng).0),
        ("preferential", preferential_attachment(35, 80, 3, &w, rng)),
        ("calibrated", calibrated_degree(3, 6, 3, &w, rng)),
        (
            "geometric",
            coverage_instance(40, 12, 0.35, 4, &w, rng)
                .system
                .to_hypergraph()
                .expect("coverable instance"),
        ),
        ("star", star(12, 5, 2)),
        ("clique", clique(8)),
        ("path", path(12)),
        ("cycle", cycle(12)),
        ("sunflower", sunflower(6, 2, 3, 4, 1)),
        ("f-partite", complete_f_partite(3, 3)),
        ("hyper-star", hyper_star(3, 8, 7)),
    ]
}

/// A small random revision of `g`: remove up to ~15% of edges, insert a
/// few random hyperedges, re-weight a few vertices.
fn random_delta(g: &Hypergraph, rng: &mut StdRng) -> InstanceDelta {
    let n = g.n();
    let remove_edges: Vec<EdgeId> = g
        .edges()
        .filter(|_| rng.gen_range(0u32..100) < 10)
        .collect();
    let rank = g.rank().max(2) as usize;
    let add_edges: Vec<Vec<VertexId>> = (0..rng.gen_range(1usize..4))
        .map(|_| {
            let size = rng.gen_range(1..=rank.min(n));
            (0..size)
                .map(|_| VertexId::new(rng.gen_range(0..n)))
                .collect()
        })
        .collect();
    let mut touched = vec![false; n];
    let mut set_weights = Vec::new();
    for _ in 0..rng.gen_range(0usize..4) {
        let v = rng.gen_range(0..n);
        if !touched[v] {
            touched[v] = true;
            set_weights.push((VertexId::new(v), rng.gen_range(1u64..60)));
        }
    }
    InstanceDelta {
        remove_edges,
        add_edges,
        set_weights,
    }
}

#[test]
fn mutation_streams_stay_certified_across_every_family() {
    let mut rng = StdRng::seed_from_u64(0x3A17);
    let solver = MwhvcSolver::with_epsilon(EPSILON).unwrap();
    for (family, base) in family_instances(&mut rng) {
        let mut g = base;
        let mut prev = solver
            .solve(&g)
            .unwrap_or_else(|e| panic!("{family}: cold solve failed: {e}"));
        for step in 0..DELTAS_PER_FAMILY {
            let delta = random_delta(&g, &mut rng);
            let out = delta
                .apply(&g)
                .unwrap_or_else(|e| panic!("{family} step {step}: delta failed: {e}"));
            let warm_state = WarmState::for_delta(&prev, &out);
            let warm = solver
                .solve_warm(&out.graph, &warm_state)
                .unwrap_or_else(|e| panic!("{family} step {step}: warm solve failed: {e}"));

            // Correctness is proven from first principles on every step.
            assert!(
                warm.cover.is_cover_of(&out.graph),
                "{family} step {step}: not a cover"
            );
            let cert = Certificate::from_result(&warm, EPSILON);
            let bound = cert
                .verify(&out.graph)
                .unwrap_or_else(|e| panic!("{family} step {step}: certificate failed: {e}"));
            let guarantee = out.graph.rank().max(1) as f64 + EPSILON;
            assert!(
                bound <= guarantee * (1.0 + DEFAULT_TOLERANCE),
                "{family} step {step}: ratio bound {bound} > {guarantee}"
            );
            assert!(
                approximation_holds(
                    &out.graph,
                    warm.weight,
                    warm.dual_total,
                    EPSILON,
                    DEFAULT_TOLERANCE
                ),
                "{family} step {step}: w(C) = {} violates (f+eps)·Σδ = {}",
                warm.weight,
                guarantee * warm.dual_total
            );

            g = out.graph;
            prev = warm;
        }
    }
}

#[test]
fn empty_delta_warm_solve_is_bit_identical_to_cold_across_every_family() {
    let mut rng = StdRng::seed_from_u64(0xC01D);
    let solver = MwhvcSolver::with_epsilon(EPSILON).unwrap();
    for (family, g) in family_instances(&mut rng) {
        let cold = solver.solve(&g).unwrap();

        // Through the delta machinery, exactly as the service does it.
        let out = InstanceDelta::empty().apply(&g).unwrap();
        assert_eq!(out.graph, g, "{family}: empty delta changes nothing");
        let warm = solver
            .solve_warm(&out.graph, &WarmState::for_delta(&cold, &out))
            .unwrap();
        assert_eq!(warm.cover, cold.cover, "{family}: cover");
        assert_eq!(warm.duals, cold.duals, "{family}: duals");
        assert_eq!(warm.levels, cold.levels, "{family}: levels");
        assert_eq!(warm.weight, cold.weight, "{family}: weight");
        assert_eq!(warm.dual_total, cold.dual_total, "{family}: dual total");

        // And through the same-instance path.
        let warm = solver
            .solve_warm(&g, &WarmState::from_result(&cold))
            .unwrap();
        assert_eq!(warm.cover, cold.cover, "{family}: cover (from_result)");
        assert_eq!(warm.duals, cold.duals, "{family}: duals (from_result)");
        assert_eq!(warm.levels, cold.levels, "{family}: levels (from_result)");

        // The warm run is a constant number of rounds: previous cover
        // members re-join immediately and cover everything.
        assert!(
            warm.rounds() <= 6,
            "{family}: unchanged-instance warm solve took {} rounds",
            warm.rounds()
        );
    }
}
