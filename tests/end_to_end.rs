//! Integration tests spanning every crate: generators → reductions →
//! distributed solve → verification, plus baseline agreement.

use distributed_covering::baselines::exact::solve_exact;
use distributed_covering::baselines::kvy::solve_kvy;
use distributed_covering::baselines::sequential::{bar_yehuda_even, greedy_cover};
use distributed_covering::core::{MwhvcConfig, MwhvcSolver};
use distributed_covering::hypergraph::generators::{
    clique, coverage_instance, cycle, hyper_star, random_uniform, star, sunflower, RandomUniform,
    WeightDist,
};
use distributed_covering::hypergraph::{format, SetSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn full_pipeline_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(1);
    for (f, eps, wmax) in [
        (2u32, 1.0, 1u64),
        (3, 0.5, 100),
        (4, 0.25, 10_000),
        (6, 0.1, 7),
    ] {
        let g = random_uniform(
            &RandomUniform {
                n: 80,
                m: 200,
                rank: f as usize,
                weights: WeightDist::Uniform { min: 1, max: wmax },
            },
            &mut rng,
        );
        let r = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
        assert!(r.cover.is_cover_of(&g), "f={f}");
        assert!(
            r.ratio_upper_bound() <= f64::from(f) + eps + 1e-9,
            "guarantee violated at f={f}: {}",
            r.ratio_upper_bound()
        );
        assert!(r.report.all_halted);
        // Dual lower bound is consistent with the sequential certificate.
        let bye = bar_yehuda_even(&g);
        assert!(r.dual_total <= bye.weight as f64 + 1e-6);
    }
}

#[test]
fn structured_families() {
    for g in [
        star(50, 1, 100),
        star(50, 1000, 1),
        clique(12),
        cycle(31),
        sunflower(64, 2, 3, 3, 50),
        hyper_star(4, 100, 17),
    ] {
        let r = MwhvcSolver::with_epsilon(0.5).unwrap().solve(&g).unwrap();
        assert!(r.cover.is_cover_of(&g));
        let bound = f64::from(g.rank()) + 0.5;
        assert!(r.ratio_upper_bound() <= bound + 1e-9);
    }
}

#[test]
fn set_cover_workflow() {
    let mut rng = StdRng::seed_from_u64(2);
    let inst = coverage_instance(
        150,
        40,
        0.2,
        4,
        &WeightDist::Uniform { min: 1, max: 9 },
        &mut rng,
    );
    let g = inst.system.to_hypergraph().unwrap();
    let r = MwhvcSolver::with_epsilon(0.5).unwrap().solve(&g).unwrap();
    let chosen = SetSystem::chosen_sets(&r.cover);
    assert!(inst.system.is_set_cover(&chosen));
    assert_eq!(inst.system.cover_weight(&chosen), r.weight);
}

#[test]
fn text_format_roundtrip_preserves_solution() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = random_uniform(
        &RandomUniform {
            n: 40,
            m: 90,
            rank: 3,
            weights: WeightDist::Uniform { min: 1, max: 50 },
        },
        &mut rng,
    );
    let text = format::serialize(&g);
    let g2 = format::parse(&text).unwrap();
    assert_eq!(g, g2);
    let solver = MwhvcSolver::with_epsilon(0.5).unwrap();
    let r1 = solver.solve(&g).unwrap();
    let r2 = solver.solve(&g2).unwrap();
    assert_eq!(r1.cover, r2.cover);
    assert_eq!(r1.report.rounds, r2.report.rounds);
}

#[test]
fn all_algorithms_agree_on_feasibility_and_exact_is_best() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..5 {
        let g = random_uniform(
            &RandomUniform {
                n: 14,
                m: 22,
                rank: 3,
                weights: WeightDist::Uniform { min: 1, max: 8 },
            },
            &mut rng,
        );
        let exact = solve_exact(&g, 10_000_000);
        assert!(exact.optimal);
        let ours = MwhvcSolver::with_epsilon(0.5).unwrap().solve(&g).unwrap();
        let kvy = solve_kvy(&g, 0.5).unwrap();
        let bye = bar_yehuda_even(&g);
        let greedy = greedy_cover(&g);
        for (name, w) in [
            ("ours", ours.weight),
            ("kvy", kvy.weight),
            ("bye", bye.weight),
            ("greedy", greedy.weight(&g)),
        ] {
            assert!(exact.weight <= w, "{name} beat the exact optimum?!");
        }
        // Every dual certificate lower-bounds the optimum.
        assert!(ours.dual_total <= exact.weight as f64 + 1e-9);
        assert!(kvy.dual_total <= exact.weight as f64 + 1e-9);
        assert!(bye.dual_total <= exact.weight);
    }
}

#[test]
fn solver_determinism_across_runs() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = random_uniform(
        &RandomUniform {
            n: 60,
            m: 150,
            rank: 4,
            weights: WeightDist::PowersOfTwo { max: 1 << 14 },
        },
        &mut rng,
    );
    let solver = MwhvcSolver::new(MwhvcConfig::new(0.3).unwrap());
    let a = solver.solve(&g).unwrap();
    let b = solver.solve(&g).unwrap();
    assert_eq!(a.cover, b.cover);
    assert_eq!(a.duals, b.duals);
    assert_eq!(a.report.rounds, b.report.rounds);
    assert_eq!(a.report.total_bits, b.report.total_bits);
}
