//! Scheduler equivalence property tests: the sequential `Simulator` and the
//! `ParallelSimulator` (at 1, 2, and 8 threads, under both chunk partition
//! policies) must produce bit-identical `SimReport`s, node states, covers,
//! levels, and duals — on every generator family and on the full MWHVC
//! protocol stack. This is the determinism contract of the zero-allocation
//! round engine: node placement may change which worker steps a node and
//! which messages take the intra-chunk fast path, but never any result.

use distributed_covering::congest::{
    Ctx, ParallelSimulator, PartitionPolicy, Process, SimReport, Simulator, Status, Topology,
};
use distributed_covering::core::{MwhvcConfig, MwhvcSolver};
use distributed_covering::hypergraph::generators::{
    calibrated_degree, coverage_instance, planted_cover, preferential_attachment,
    random_mixed_rank, random_uniform, structured, RandomUniform, WeightDist,
};
use distributed_covering::hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const POLICIES: [PartitionPolicy; 2] = [PartitionPolicy::Contiguous, PartitionPolicy::Locality];

/// A deterministic stateful protocol with data-dependent fan-out, used to
/// compare raw scheduler behaviour on the bipartite incidence network.
#[derive(Clone)]
struct Churn {
    state: u64,
    ttl: u32,
}

impl Process for Churn {
    type Msg = u64;
    fn on_round(&mut self, ctx: &mut Ctx<'_, u64>) -> Status {
        for item in ctx.inbox() {
            self.state = self
                .state
                .rotate_left(7)
                .wrapping_add(item.msg)
                .wrapping_mul(0x9E37_79B9)
                ^ item.port as u64;
        }
        if self.ttl == 0 {
            return Status::Halted;
        }
        self.ttl -= 1;
        let d = ctx.degree();
        if d > 0 {
            if self.state.is_multiple_of(3) {
                ctx.broadcast(self.state % 8191);
            } else {
                ctx.send((self.state as usize) % d, self.state % 127);
            }
        }
        Status::Running
    }
}

fn run_seq(topo: &Topology, nodes: Vec<Churn>) -> (SimReport, Vec<u64>) {
    let mut sim = Simulator::new(topo.clone(), nodes).with_trace(true);
    let report = sim.run(64).expect("terminates");
    let states = sim.nodes().iter().map(|n| n.state).collect();
    (report, states)
}

fn run_par(
    topo: &Topology,
    nodes: Vec<Churn>,
    threads: usize,
    policy: PartitionPolicy,
) -> (SimReport, Vec<u64>) {
    let mut sim =
        ParallelSimulator::with_partition(topo.clone(), nodes, threads, policy).with_trace(true);
    let report = sim.run(64).expect("terminates");
    let (nodes, _) = sim.into_parts();
    let states = nodes.iter().map(|n| n.state).collect();
    (report, states)
}

fn assert_equivalent_on(topo: &Topology, label: &str) {
    let make = || -> Vec<Churn> {
        (0..topo.len())
            .map(|i| Churn {
                state: 0x51ED_u64.wrapping_mul(i as u64 + 1),
                ttl: 9,
            })
            .collect()
    };
    let (seq_report, seq_states) = run_seq(topo, make());
    for threads in THREAD_COUNTS {
        for policy in POLICIES {
            let (par_report, par_states) = run_par(topo, make(), threads, policy);
            assert_eq!(
                seq_report, par_report,
                "{label}: report at {threads} threads ({policy})"
            );
            assert_eq!(
                seq_states, par_states,
                "{label}: states at {threads} threads ({policy})"
            );
        }
    }
}

fn instances() -> Vec<(String, Hypergraph)> {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let mut out = Vec::new();
    for (i, rank) in [2usize, 3, 5].iter().enumerate() {
        let g = random_uniform(
            &RandomUniform {
                n: 40 + 20 * i,
                m: 90 + 40 * i,
                rank: *rank,
                weights: WeightDist::Uniform { min: 1, max: 100 },
            },
            &mut rng,
        );
        out.push((format!("random_uniform_f{rank}"), g));
    }
    out.push((
        "random_mixed_rank".into(),
        random_mixed_rank(
            60,
            120,
            1,
            6,
            &WeightDist::PowersOfTwo { max: 4096 },
            &mut rng,
        ),
    ));
    out.push((
        "planted_cover".into(),
        planted_cover(50, 110, 3, 8, 40, &mut rng).0,
    ));
    out.push((
        "preferential_attachment".into(),
        preferential_attachment(
            48,
            100,
            3,
            &WeightDist::Uniform { min: 1, max: 50 },
            &mut rng,
        ),
    ));
    out.push((
        "calibrated_degree".into(),
        calibrated_degree(3, 7, 4, &WeightDist::Uniform { min: 1, max: 20 }, &mut rng),
    ));
    out.push((
        "geometric_coverage".into(),
        coverage_instance(
            40,
            24,
            0.22,
            4,
            &WeightDist::Uniform { min: 1, max: 30 },
            &mut rng,
        )
        .system
        .to_hypergraph()
        .expect("coverage instances are valid"),
    ));
    out.push(("structured_star".into(), structured::star(20, 100, 3)));
    out.push(("structured_clique".into(), structured::clique(11)));
    out.push(("structured_path".into(), structured::path(30)));
    out.push(("structured_cycle".into(), structured::cycle(28)));
    out.push((
        "structured_sunflower".into(),
        structured::sunflower(9, 2, 4, 3, 1),
    ));
    out.push((
        "structured_f_partite".into(),
        structured::complete_f_partite(3, 5),
    ));
    out.push((
        "structured_hyper_star".into(),
        structured::hyper_star(3, 9, 50),
    ));
    out
}

#[test]
fn raw_schedulers_agree_on_incidence_networks() {
    for (label, g) in instances() {
        let topo = Topology::bipartite_incidence(&g);
        assert_equivalent_on(&topo, &label);
    }
}

#[test]
fn mwhvc_protocol_identical_across_schedulers() {
    for (label, g) in instances() {
        let seq = MwhvcSolver::new(MwhvcConfig::new(0.5).unwrap())
            .solve(&g)
            .expect(&label);
        for policy in POLICIES {
            let solver = MwhvcSolver::new(MwhvcConfig::new(0.5).unwrap().with_partition(policy));
            for threads in THREAD_COUNTS {
                let par = solver.solve_parallel(&g, threads).expect(&label);
                assert_eq!(
                    seq.cover, par.cover,
                    "{label}: cover at {threads} threads ({policy})"
                );
                assert_eq!(
                    seq.levels, par.levels,
                    "{label}: levels at {threads} threads ({policy})"
                );
                assert_eq!(
                    seq.duals, par.duals,
                    "{label}: duals at {threads} threads ({policy})"
                );
                assert_eq!(
                    seq.report, par.report,
                    "{label}: SimReport at {threads} threads ({policy})"
                );
                assert_eq!(
                    seq.iterations, par.iterations,
                    "{label}: iterations at {threads} threads ({policy})"
                );
            }
        }
    }
}

#[test]
fn edge_case_topologies_agree() {
    // Degenerate shapes that stress chunking: a single link, a star whose
    // center dominates one chunk, and a dense clique.
    let shapes: Vec<(&str, Topology)> = vec![
        ("single_link", Topology::from_links(2, &[(0, 1)])),
        (
            "star",
            Topology::from_links(17, &(1..17).map(|i| (0usize, i)).collect::<Vec<_>>()),
        ),
        (
            "clique",
            Topology::from_links(
                12,
                &(0..12)
                    .flat_map(|i| ((i + 1)..12).map(move |j| (i, j)))
                    .collect::<Vec<_>>(),
            ),
        ),
    ];
    for (label, topo) in shapes {
        assert_equivalent_on(&topo, label);
    }
}
