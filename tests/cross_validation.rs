//! Cross-validation: three independent executions of Algorithm MWHVC must
//! agree exactly — the sequential simulator, the thread-pool simulator, and
//! the centralized reference implementation.

use distributed_covering::core::{
    solve_reference, AlphaPolicy, MwhvcConfig, MwhvcSolver, NullObserver, Variant,
};
use distributed_covering::hypergraph::generators::{
    random_mixed_rank, random_uniform, RandomUniform, WeightDist,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn configs() -> Vec<MwhvcConfig> {
    vec![
        MwhvcConfig::new(1.0).unwrap(),
        MwhvcConfig::new(0.5)
            .unwrap()
            .with_variant(Variant::HalfBid),
        MwhvcConfig::new(0.25)
            .unwrap()
            .with_alpha(AlphaPolicy::Fixed(4)),
        MwhvcConfig::new(0.1)
            .unwrap()
            .with_alpha(AlphaPolicy::LocalTheorem9 { gamma: 0.001 }),
        MwhvcConfig::new(0.01).unwrap(),
    ]
}

#[test]
fn distributed_equals_reference_everywhere() {
    let mut rng = StdRng::seed_from_u64(10);
    for (i, cfg) in configs().into_iter().enumerate() {
        let g = random_uniform(
            &RandomUniform {
                n: 60,
                m: 140,
                rank: 3 + i % 3,
                weights: WeightDist::Uniform {
                    min: 1,
                    max: 1 << (2 * i as u32 + 1),
                },
            },
            &mut rng,
        );
        let dist = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
        let refr = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
        assert_eq!(dist.cover, refr.cover, "config {i}");
        assert_eq!(dist.levels, refr.levels, "config {i}");
        assert_eq!(dist.duals, refr.duals, "config {i}");
        assert_eq!(dist.iterations, refr.iterations, "config {i}");
        assert_eq!(dist.weight, refr.weight, "config {i}");
    }
}

#[test]
fn parallel_scheduler_is_bit_identical() {
    let mut rng = StdRng::seed_from_u64(11);
    let g = random_mixed_rank(
        70,
        160,
        2,
        5,
        &WeightDist::Uniform { min: 1, max: 99 },
        &mut rng,
    );
    let solver = MwhvcSolver::with_epsilon(0.4).unwrap();
    let seq = solver.solve(&g).unwrap();
    for threads in [1usize, 2, 4, 9] {
        let par = solver.solve_parallel(&g, threads).unwrap();
        assert_eq!(par.cover, seq.cover, "threads={threads}");
        assert_eq!(par.duals, seq.duals, "threads={threads}");
        assert_eq!(par.report.rounds, seq.report.rounds, "threads={threads}");
        assert_eq!(
            par.report.total_messages, seq.report.total_messages,
            "threads={threads}"
        );
        assert_eq!(
            par.report.total_bits, seq.report.total_bits,
            "threads={threads}"
        );
        assert_eq!(
            par.report.max_link_bits, seq.report.max_link_bits,
            "threads={threads}"
        );
    }
}

#[test]
fn mixed_rank_and_duplicate_edges() {
    // Duplicate hyperedges and rank-1 edges (forced vertices) are legal.
    use distributed_covering::hypergraph::{HypergraphBuilder, VertexId};
    let mut b = HypergraphBuilder::new();
    let vs = b.add_vertices([5, 3, 8, 2]);
    b.add_edge([vs[0]]).unwrap(); // forced singleton
    b.add_edge([vs[1], vs[2]]).unwrap();
    b.add_edge([vs[1], vs[2]]).unwrap(); // duplicate
    b.add_edge([vs[2], vs[3], vs[0]]).unwrap();
    let g = b.build().unwrap();
    let cfg = MwhvcConfig::new(0.5).unwrap();
    let dist = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
    let refr = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
    assert_eq!(dist.cover, refr.cover);
    assert!(
        dist.cover.contains(VertexId::new(0)),
        "singleton edge forces v0"
    );
}
