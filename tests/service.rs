//! End-to-end tests of the asynchronous serving stack through its public
//! API: `SolveService` submission/backpressure/shutdown semantics and the
//! `SolveSession` batch wrappers layered on top.
//!
//! (Deterministic queue-state tests — gated workers, panic injection —
//! live in `crates/core/src/service.rs` where tasks can be fabricated;
//! these tests drive real solves only.)

use std::sync::Arc;
use std::time::Duration;

use dcover_core::{
    MwhvcSolver, RequestClass, SolveError, SolveService, SolveSession, SubmitError, SubmitOptions,
};
use dcover_hypergraph::generators::{random_uniform, RandomUniform, WeightDist};
use dcover_hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_instances(count: usize, seed: u64) -> Vec<Arc<Hypergraph>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            Arc::new(random_uniform(
                &RandomUniform {
                    n: 20 + (i * 13) % 60,
                    m: 40 + (i * 29) % 120,
                    rank: 2 + i % 3,
                    weights: WeightDist::Uniform {
                        min: 1,
                        max: 4 + (i as u64 * 7) % 40,
                    },
                },
                &mut rng,
            ))
        })
        .collect()
}

#[test]
fn streamed_submissions_are_bit_identical_to_sequential_solves() {
    let instances = mixed_instances(24, 1);
    let service = SolveService::with_epsilon(0.5, 4).unwrap();
    let solver = MwhvcSolver::with_epsilon(0.5).unwrap();
    // Submit everything up front (queue capacity 16 < 24: the blocking
    // submit absorbs the overflow), then redeem in submission order.
    let tickets: Vec<_> = instances
        .iter()
        .map(|g| service.submit(Arc::clone(g), 0.5).unwrap())
        .collect();
    for (i, (g, t)) in instances.iter().zip(tickets).enumerate() {
        assert_eq!(t.seq(), i as u64, "arrival-order sequence ids");
        let served = t.wait().unwrap();
        let solo = solver.solve(g).unwrap();
        assert_eq!(served.cover, solo.cover, "instance {i}");
        assert_eq!(served.duals, solo.duals, "instance {i}");
        assert_eq!(served.levels, solo.levels, "instance {i}");
        assert_eq!(served.report, solo.report, "instance {i}");
    }
}

#[test]
fn completion_order_redemption_covers_every_submission() {
    // Redeem with try_wait polling (the `dcover serve` loop shape): every
    // seq id must come back exactly once, whatever order solves finish.
    let instances = mixed_instances(12, 2);
    let service = SolveService::with_epsilon(1.0, 3).unwrap();
    let mut pending: Vec<_> = instances
        .iter()
        .map(|g| service.submit(Arc::clone(g), 1.0).unwrap())
        .collect();
    let mut seen = vec![false; pending.len()];
    while !pending.is_empty() {
        let mut still = Vec::with_capacity(pending.len());
        for t in pending {
            let seq = t.seq() as usize;
            match t.try_wait() {
                Ok(result) => {
                    assert!(!seen[seq], "seq {seq} delivered twice");
                    seen[seq] = true;
                    assert!(result.unwrap().cover.is_cover_of(&instances[seq]));
                }
                Err(t) => still.push(t),
            }
        }
        pending = still;
        std::thread::yield_now();
    }
    assert!(seen.iter().all(|&s| s), "every submission completed");
}

#[test]
fn shutdown_resolves_every_outstanding_ticket_then_refuses_work() {
    let instances = mixed_instances(10, 3);
    let service = SolveService::with_epsilon(0.5, 2).unwrap();
    let tickets: Vec<_> = instances
        .iter()
        .map(|g| service.submit(Arc::clone(g), 0.5).unwrap())
        .collect();
    service.shutdown();
    for (g, t) in instances.iter().zip(tickets) {
        assert!(t.is_done(), "shutdown drained in-flight work");
        assert!(t.wait().unwrap().cover.is_cover_of(g));
    }
    assert!(matches!(
        service.submit(Arc::clone(&instances[0]), 0.5),
        Err(SubmitError::ShutDown)
    ));
}

#[test]
fn try_submit_backpressure_surfaces_under_load() {
    // A tiny queue on one worker under a burst of large instances must
    // hit Backpressure at least once; retrying with the blocking submit
    // still serves everything. (Deterministic single-rejection tests live
    // in the core crate; this exercises the public retry loop.)
    let big: Vec<Arc<Hypergraph>> = mixed_instances(1, 4)
        .into_iter()
        .map(|_| {
            let mut rng = StdRng::seed_from_u64(9);
            Arc::new(random_uniform(
                &RandomUniform {
                    n: 400,
                    m: 900,
                    rank: 3,
                    weights: WeightDist::Uniform { min: 1, max: 50 },
                },
                &mut rng,
            ))
        })
        .collect();
    let g = &big[0];
    let service =
        SolveService::with_queue_capacity(dcover_core::MwhvcConfig::new(0.5).unwrap(), 1, 1);
    let mut tickets = Vec::new();
    let mut rejections = 0usize;
    for _ in 0..12 {
        match service.try_submit(g, 0.5) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::Backpressure { capacity }) => {
                assert_eq!(capacity, 1);
                rejections += 1;
                tickets.push(service.submit(Arc::clone(g), 0.5).unwrap());
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }
    assert!(rejections > 0, "a 1-deep queue must push back on a burst");
    for t in tickets {
        assert!(t.wait().unwrap().cover.is_cover_of(g));
    }
}

#[test]
fn batch_wrappers_match_direct_service_submission() {
    let instances = mixed_instances(10, 5);
    let mut session = SolveSession::with_epsilon(0.5, 3).unwrap();
    let direct: Vec<_> = {
        let tickets: Vec<_> = instances
            .iter()
            .map(|g| session.service().submit(Arc::clone(g), 0.5).unwrap())
            .collect();
        tickets.into_iter().map(|t| t.wait().unwrap()).collect()
    };
    let batched = session.solve_batch_shared(&instances);
    for (i, (d, b)) in direct.iter().zip(&batched).enumerate() {
        let b = b.as_ref().unwrap();
        assert_eq!(d.cover, b.cover, "instance {i}");
        assert_eq!(d.duals, b.duals, "instance {i}");
        assert_eq!(d.report, b.report, "instance {i}");
    }
}

#[test]
fn interactive_class_jumps_the_bulk_backlog_fifo_within_class() {
    // One worker, one long-running instance occupying it, then a bulk
    // backlog and an interactive burst submitted while it runs. With a
    // serial worker, per-ticket queue waits order exactly like dequeues:
    // every interactive wait must undercut every bulk wait (class
    // priority), and waits must increase in submission order within each
    // class (FIFO).
    let mut rng = StdRng::seed_from_u64(41);
    let blocker = Arc::new(random_uniform(
        &RandomUniform {
            n: 700,
            m: 1600,
            rank: 3,
            weights: WeightDist::Uniform { min: 1, max: 50 },
        },
        &mut rng,
    ));
    let small: Vec<Arc<Hypergraph>> = (0..12)
        .map(|_| {
            Arc::new(random_uniform(
                &RandomUniform {
                    n: 40,
                    m: 90,
                    rank: 3,
                    weights: WeightDist::Uniform { min: 1, max: 9 },
                },
                &mut rng,
            ))
        })
        .collect();
    let service =
        SolveService::with_queue_capacity(dcover_core::MwhvcConfig::new(0.5).unwrap(), 1, 64);
    let gate = service.submit(Arc::clone(&blocker), 0.5).unwrap();
    // Bulk submitted *before* interactive: priority, not arrival order,
    // must decide the dequeue order.
    let bulk: Vec<_> = small[..6]
        .iter()
        .map(|g| {
            service
                .submit_with(Arc::clone(g), 0.5, SubmitOptions::bulk())
                .unwrap()
        })
        .collect();
    let interactive: Vec<_> = small[6..]
        .iter()
        .map(|g| {
            service
                .submit_with(Arc::clone(g), 0.5, SubmitOptions::interactive())
                .unwrap()
        })
        .collect();
    gate.wait().unwrap();
    let interactive_waits: Vec<Duration> = interactive
        .into_iter()
        .map(|t| {
            let (result, timing) = t.wait_timed();
            result.unwrap();
            timing.queue
        })
        .collect();
    let bulk_waits: Vec<Duration> = bulk
        .into_iter()
        .map(|t| {
            let (result, timing) = t.wait_timed();
            result.unwrap();
            timing.queue
        })
        .collect();
    let max_interactive = interactive_waits.iter().max().unwrap();
    let min_bulk = bulk_waits.iter().min().unwrap();
    assert!(
        max_interactive < min_bulk,
        "every interactive dequeue precedes every bulk dequeue \
         (max interactive wait {max_interactive:?} vs min bulk wait {min_bulk:?})"
    );
    for waits in [&interactive_waits, &bulk_waits] {
        for pair in waits.windows(2) {
            assert!(pair[0] < pair[1], "FIFO within class: {waits:?}");
        }
    }
    service.shutdown();
}

#[test]
fn concurrent_mixed_class_submitters_every_ticket_resolves_exactly_once() {
    // Four submitter threads (two interactive, two bulk) hammer a
    // 2-worker service — with SLO shedding and bulk aging armed —
    // through a 2-deep queue with non-blocking submissions. Attempts
    // cycle through the whole outcome matrix: every third carries an
    // already-hopeless deadline, every third is cancelled right after
    // submission, and the main thread shuts the service down mid-stream.
    // Accounting must close exactly: every attempt either yielded a
    // ticket (which resolves exactly once — completed, expired, or
    // cancelled) or was refused (backpressure / shed / shutdown).
    let mut rng = StdRng::seed_from_u64(42);
    let g = Arc::new(random_uniform(
        &RandomUniform {
            n: 150,
            m: 400,
            rank: 3,
            weights: WeightDist::Uniform { min: 1, max: 20 },
        },
        &mut rng,
    ));
    let service = Arc::new(
        SolveService::with_queue_capacity(dcover_core::MwhvcConfig::new(0.5).unwrap(), 2, 2)
            .with_shed_target(Duration::from_micros(1))
            .with_bulk_max_wait(Duration::from_millis(5)),
    );

    #[derive(Default)]
    struct Tally {
        completed: usize,
        expired: usize,
        cancelled_queued: usize,
        cancelled_mid_run: usize,
        backpressure: usize,
        shed: usize,
        shut_down: usize,
        zero_deadline_issued: usize,
    }

    let handles: Vec<_> = (0..4)
        .map(|worker: usize| {
            let service = Arc::clone(&service);
            let g = Arc::clone(&g);
            std::thread::spawn(move || {
                let class = if worker.is_multiple_of(2) {
                    RequestClass::Interactive
                } else {
                    RequestClass::Bulk
                };
                let mut tally = Tally::default();
                let mut tickets = Vec::new();
                for attempt in 0..30 {
                    let mut opts = SubmitOptions {
                        class,
                        deadline: None,
                    };
                    // Disjoint three-way split of the attempts: cancelled
                    // after submission / plain / hopeless deadline.
                    let cancel_me = attempt % 3 == 0;
                    let doomed = attempt % 3 == 2;
                    if doomed {
                        opts = opts.with_deadline(Duration::ZERO);
                    }
                    match service.try_submit_with(&g, 0.5, opts) {
                        Ok(t) => {
                            if doomed {
                                tally.zero_deadline_issued += 1;
                            }
                            if cancel_me {
                                t.cancel();
                            }
                            tickets.push(t);
                        }
                        Err(SubmitError::Backpressure { capacity }) => {
                            assert_eq!(capacity, 2);
                            tally.backpressure += 1;
                        }
                        Err(SubmitError::Overloaded { .. }) => {
                            assert_eq!(class, RequestClass::Bulk, "only bulk is shed");
                            tally.shed += 1;
                        }
                        Err(SubmitError::ShutDown) => {
                            // The door never reopens; count the rest of
                            // the attempts as refused and stop submitting.
                            tally.shut_down += 30 - attempt;
                            break;
                        }
                        Err(other) => panic!("unexpected submit error: {other:?}"),
                    }
                }
                (tally, tickets)
            })
        })
        .collect();

    // wall-clock: let the submitter threads generate ~25 ms of real
    // traffic before shutdown; the exact overlap is the point of the test,
    // not a synchronization condition.
    std::thread::sleep(Duration::from_millis(25));
    service.shutdown();

    let mut total = Tally::default();
    let mut attempts_accounted = 0usize;
    for handle in handles {
        let (tally, tickets) = handle.join().unwrap();
        attempts_accounted += tickets.len() + tally.backpressure + tally.shed + tally.shut_down;
        total.backpressure += tally.backpressure;
        total.shed += tally.shed;
        total.shut_down += tally.shut_down;
        total.zero_deadline_issued += tally.zero_deadline_issued;
        for t in tickets {
            // Shutdown drained both classes: nothing is left hanging.
            assert!(t.is_done(), "shutdown resolves every issued ticket");
            let (result, timing) = t.wait_timed();
            match result {
                Ok(result) => {
                    assert!(result.cover.is_cover_of(&g));
                    total.completed += 1;
                }
                Err(SolveError::Expired { .. }) => total.expired += 1,
                // A cancel that landed while the ticket was queued never
                // ran (zero run time); one that landed mid-run stopped a
                // worker at a round boundary. A cancel that lost the race
                // outright resolves Ok above — all three are legal.
                Err(SolveError::Cancelled) => {
                    if timing.run == Duration::ZERO {
                        total.cancelled_queued += 1;
                    } else {
                        total.cancelled_mid_run += 1;
                    }
                }
                Err(other) => panic!("unexpected solve outcome: {other:?}"),
            }
        }
    }
    // Every attempt resolved exactly once, one way or another.
    assert_eq!(attempts_accounted, 4 * 30);
    assert!(total.completed > 0, "some solves ran to completion");
    assert!(
        total.backpressure > 0,
        "a 2-deep queue under 4 hammering submitters must push back"
    );
    assert!(
        total.cancelled_queued + total.cancelled_mid_run > 0,
        "with a third of the attempts cancelled at submit, some must resolve Cancelled"
    );
    if total.zero_deadline_issued > 0 {
        assert!(
            total.expired > 0,
            "zero-deadline tickets were issued ({}) but none expired",
            total.zero_deadline_issued
        );
    }
    // The service's own accounting agrees with the caller's. At the pool
    // level a mid-run cancel is a *completed* task (its worker ran it);
    // the pool's cancelled counter only counts queued discards.
    let m = service.metrics();
    assert_eq!(
        m.interactive.completed + m.bulk.completed,
        (total.completed + total.cancelled_mid_run) as u64
    );
    assert_eq!(m.interactive.expired + m.bulk.expired, total.expired as u64);
    assert_eq!(
        m.interactive.cancelled + m.bulk.cancelled,
        total.cancelled_queued as u64
    );
    assert_eq!(
        m.interactive.rejected + m.bulk.rejected,
        total.backpressure as u64
    );
    assert_eq!(m.interactive.shed, 0, "interactive is never shed");
    assert_eq!(m.bulk.shed, total.shed as u64);
}

#[test]
fn mixed_epsilons_share_one_service() {
    let instances = mixed_instances(9, 6);
    let service = SolveService::with_epsilon(0.5, 3).unwrap();
    let epsilons = [0.1, 0.5, 1.0];
    let tickets: Vec<_> = instances
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let eps = epsilons[i % 3];
            (eps, service.submit(Arc::clone(g), eps).unwrap())
        })
        .collect();
    for ((eps, t), g) in tickets.into_iter().zip(&instances) {
        let served = t.wait().unwrap();
        let solo = MwhvcSolver::with_epsilon(eps).unwrap().solve(g).unwrap();
        assert_eq!(served.duals, solo.duals, "eps {eps}");
        assert_eq!(served.report, solo.report, "eps {eps}");
        let bound = g.rank().max(1) as f64 + eps;
        assert!(served.ratio_upper_bound() <= bound + 1e-9);
    }
}
