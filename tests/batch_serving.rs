//! End-to-end batch-serving equivalence: `SolveSession::solve_batch` must
//! return, for every instance of a mixed workload, results **bit-identical**
//! to per-instance `MwhvcSolver::solve` (covers, duals, levels, weights,
//! and full `SimReport`s), across configurations and repeated batches on
//! one session — the serving-layer analogue of the scheduler determinism
//! contract.

use distributed_covering::core::{MwhvcConfig, MwhvcSolver, SolveSession, Variant};
use distributed_covering::hypergraph::generators::{
    random_mixed_rank, random_uniform, structured, RandomUniform, WeightDist,
};
use distributed_covering::hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A mixed serving workload: uniform and mixed-rank random instances of
/// varying size, plus structured extremal shapes.
fn workload(count: usize, seed: u64) -> Vec<Hypergraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| match i % 4 {
            0 | 1 => random_uniform(
                &RandomUniform {
                    n: 20 + (i * 11) % 60,
                    m: 30 + (i * 17) % 120,
                    rank: 2 + i % 3,
                    weights: WeightDist::Uniform {
                        min: 1,
                        max: 4 + (i as u64 * 3) % 40,
                    },
                },
                &mut rng,
            ),
            2 => {
                let n = 15 + (i * 7) % 35;
                let m = 25 + (i * 5) % 50;
                random_mixed_rank(
                    n,
                    m,
                    1,
                    4,
                    &WeightDist::Uniform { min: 1, max: 9 },
                    &mut rng,
                )
            }
            _ => {
                if rng.gen_bool(0.5) {
                    structured::star(6 + i % 20, 3, 1 + (i as u64 % 5))
                } else {
                    structured::cycle(5 + i % 25)
                }
            }
        })
        .collect()
}

fn assert_bit_identical(
    a: &distributed_covering::core::CoverResult,
    b: &distributed_covering::core::CoverResult,
    ctx: &str,
) {
    assert_eq!(a.cover, b.cover, "{ctx}: covers differ");
    assert_eq!(a.duals, b.duals, "{ctx}: duals differ");
    assert_eq!(a.levels, b.levels, "{ctx}: levels differ");
    assert_eq!(a.weight, b.weight, "{ctx}: weights differ");
    assert_eq!(
        a.dual_total.to_bits(),
        b.dual_total.to_bits(),
        "{ctx}: dual totals differ"
    );
    assert_eq!(a.iterations, b.iterations, "{ctx}: iteration counts differ");
    assert_eq!(a.report, b.report, "{ctx}: reports differ");
}

#[test]
fn solve_batch_is_bit_identical_to_per_instance_solve() {
    let instances = workload(24, 42);
    for (eps, threads) in [(1.0, 1usize), (0.5, 4), (0.25, 8)] {
        let solver = MwhvcSolver::with_epsilon(eps).unwrap();
        let mut session = SolveSession::with_epsilon(eps, threads).unwrap();
        let batch = session.solve_batch(&instances);
        assert_eq!(batch.len(), instances.len());
        for (i, (g, res)) in instances.iter().zip(&batch).enumerate() {
            let individual = solver.solve(g).unwrap();
            let batched = res
                .as_ref()
                .unwrap_or_else(|e| panic!("instance {i} failed in batch: {e}"));
            assert_bit_identical(
                batched,
                &individual,
                &format!("eps={eps} t={threads} i={i}"),
            );
        }
    }
}

#[test]
fn repeated_batches_on_one_session_stay_identical() {
    // The arenas have warm capacity from batch 1; batches 2..n must still
    // be bit-identical to fresh solves (recycling must never leak state).
    let solver = MwhvcSolver::with_epsilon(0.5).unwrap();
    let mut session = SolveSession::with_epsilon(0.5, 4).unwrap();
    for batch_no in 0..3 {
        let instances = workload(10, 7_000 + batch_no);
        let batch = session.solve_batch(&instances);
        for (i, (g, res)) in instances.iter().zip(&batch).enumerate() {
            let individual = solver.solve(g).unwrap();
            assert_bit_identical(
                res.as_ref().unwrap(),
                &individual,
                &format!("batch={batch_no} i={i}"),
            );
        }
    }
}

#[test]
fn session_solve_and_batch_agree_with_solve_parallel() {
    // All four entry points — solve, solve_parallel, session solve,
    // session batch — one result.
    let instances = workload(8, 99);
    let cfg = MwhvcConfig::new(0.5)
        .unwrap()
        .with_variant(Variant::HalfBid);
    let solver = MwhvcSolver::new(cfg.clone());
    let mut session = SolveSession::new(cfg, 4);
    let batch = session.solve_batch(&instances);
    for (i, g) in instances.iter().enumerate() {
        let a = solver.solve(g).unwrap();
        let b = solver.solve_parallel(g, 4).unwrap();
        let c = session.solve(g).unwrap();
        let d = batch[i].as_ref().unwrap();
        assert_bit_identical(&a, &b, &format!("solve vs solve_parallel i={i}"));
        assert_bit_identical(&a, &c, &format!("solve vs session.solve i={i}"));
        assert_bit_identical(&a, d, &format!("solve vs batch i={i}"));
    }
}
