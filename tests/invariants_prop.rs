//! Property-based tests (proptest): on arbitrary random hypergraphs and
//! parameters, every paper invariant holds at every iteration, the output
//! is a feasible (f+ε)-approximate cover, and the distributed run matches
//! the reference exactly.

use distributed_covering::core::{
    approximation_holds, solve_reference, InvariantChecker, MwhvcConfig, MwhvcSolver,
    NullObserver, Variant, DEFAULT_TOLERANCE,
};
use distributed_covering::hypergraph::{Cover, Hypergraph, HypergraphBuilder, VertexId};
use proptest::prelude::*;

/// Strategy: an arbitrary hypergraph with n ∈ [1, 24] vertices, up to 40
/// edges of size ≤ 5, and weights in [1, 2^16].
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (1usize..=24)
        .prop_flat_map(|n| {
            (
                proptest::collection::vec(1u64..=65_536, n),
                proptest::collection::vec(
                    proptest::collection::vec(0usize..n, 1..=5),
                    0..=40,
                ),
            )
        })
        .prop_map(|(weights, raw_edges)| {
            let mut b = HypergraphBuilder::new();
            for w in weights {
                b.add_vertex(w);
            }
            for edge in raw_edges {
                // Duplicates within an edge are deduplicated by the builder.
                b.add_edge(edge.into_iter().map(VertexId::new))
                    .expect("indices are in range");
            }
            b.build().expect("valid instance")
        })
}

fn arb_epsilon() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1.0), Just(0.5), Just(0.25), Just(0.1), Just(0.01)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cover_is_feasible_and_within_guarantee(g in arb_hypergraph(), eps in arb_epsilon()) {
        let r = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
        prop_assert!(g.m() == 0 || r.cover.is_cover_of(&g));
        prop_assert!(approximation_holds(&g, r.weight, r.dual_total, eps, DEFAULT_TOLERANCE));
        // Duals are a feasible edge packing.
        for v in g.vertices() {
            let sum: f64 = g.incident_edges(v).iter().map(|&e| r.duals[e.index()]).sum();
            prop_assert!(sum <= g.weight(v) as f64 * (1.0 + DEFAULT_TOLERANCE));
        }
    }

    #[test]
    fn every_iteration_invariant_holds(g in arb_hypergraph(), eps in arb_epsilon(),
                                       halfbid in proptest::bool::ANY) {
        let variant = if halfbid { Variant::HalfBid } else { Variant::Standard };
        let cfg = MwhvcConfig::new(eps).unwrap().with_variant(variant);
        let mut checker = InvariantChecker::new(&g, &cfg);
        let _ = solve_reference(&g, &cfg, &mut checker).unwrap();
        prop_assert!(
            checker.violations().is_empty(),
            "violations: {:?}",
            checker.violations()
        );
    }

    #[test]
    fn distributed_matches_reference(g in arb_hypergraph(), eps in arb_epsilon()) {
        let cfg = MwhvcConfig::new(eps).unwrap();
        let dist = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
        let refr = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
        prop_assert_eq!(dist.cover, refr.cover);
        prop_assert_eq!(dist.levels, refr.levels);
        prop_assert_eq!(dist.duals, refr.duals);
        prop_assert_eq!(dist.iterations, refr.iterations);
    }

    #[test]
    fn pruning_preserves_covers(g in arb_hypergraph()) {
        prop_assume!(g.m() > 0);
        let mut c = Cover::full(g.n());
        c.prune_redundant(&g);
        prop_assert!(c.is_cover_of(&g));
    }

    #[test]
    fn format_roundtrip(g in arb_hypergraph()) {
        use distributed_covering::hypergraph::format;
        let text = format::serialize(&g);
        let g2 = format::parse(&text).unwrap();
        prop_assert_eq!(g, g2);
    }
}
