//! Property-based tests (seeded random): on arbitrary random hypergraphs
//! and parameters, every paper invariant holds at every iteration, the
//! output is a feasible (f+ε)-approximate cover, and the distributed run
//! matches the reference exactly.

use distributed_covering::core::{
    approximation_holds, solve_reference, InvariantChecker, MwhvcConfig, MwhvcSolver, NullObserver,
    Variant, DEFAULT_TOLERANCE,
};
use distributed_covering::hypergraph::{Cover, Hypergraph, HypergraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An arbitrary hypergraph with n ∈ [1, 24] vertices, up to 40 edges of
/// size ≤ 5, and weights in [1, 2^16].
fn random_hypergraph(rng: &mut StdRng) -> Hypergraph {
    let n = rng.gen_range(1usize..=24);
    let mut b = HypergraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(rng.gen_range(1u64..=65_536));
    }
    for _ in 0..rng.gen_range(0usize..=40) {
        let size = rng.gen_range(1usize..=5);
        // Duplicates within an edge are deduplicated by the builder.
        b.add_edge((0..size).map(|_| VertexId::new(rng.gen_range(0usize..n))))
            .expect("indices are in range");
    }
    b.build().expect("valid instance")
}

const EPSILONS: [f64; 5] = [1.0, 0.5, 0.25, 0.1, 0.01];

fn random_epsilon(rng: &mut StdRng) -> f64 {
    EPSILONS[rng.gen_range(0usize..EPSILONS.len())]
}

#[test]
fn cover_is_feasible_and_within_guarantee() {
    let mut rng = StdRng::seed_from_u64(0x1a_4b);
    for case in 0..48 {
        let g = random_hypergraph(&mut rng);
        let eps = random_epsilon(&mut rng);
        let r = MwhvcSolver::with_epsilon(eps).unwrap().solve(&g).unwrap();
        assert!(g.m() == 0 || r.cover.is_cover_of(&g), "case {case}");
        assert!(
            approximation_holds(&g, r.weight, r.dual_total, eps, DEFAULT_TOLERANCE),
            "case {case} eps {eps}"
        );
        // Duals are a feasible edge packing.
        for v in g.vertices() {
            let sum: f64 = g
                .incident_edges(v)
                .iter()
                .map(|&e| r.duals[e.index()])
                .sum();
            assert!(
                sum <= g.weight(v) as f64 * (1.0 + DEFAULT_TOLERANCE),
                "case {case} vertex {v}"
            );
        }
    }
}

#[test]
fn every_iteration_invariant_holds() {
    let mut rng = StdRng::seed_from_u64(0x2b_5c);
    for case in 0..48 {
        let g = random_hypergraph(&mut rng);
        let eps = random_epsilon(&mut rng);
        let variant = if rng.gen::<bool>() {
            Variant::HalfBid
        } else {
            Variant::Standard
        };
        let cfg = MwhvcConfig::new(eps).unwrap().with_variant(variant);
        let mut checker = InvariantChecker::new(&g, &cfg);
        let _ = solve_reference(&g, &cfg, &mut checker).unwrap();
        assert!(
            checker.violations().is_empty(),
            "case {case}: violations: {:?}",
            checker.violations()
        );
    }
}

#[test]
fn distributed_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x3c_6d);
    for case in 0..48 {
        let g = random_hypergraph(&mut rng);
        let eps = random_epsilon(&mut rng);
        let cfg = MwhvcConfig::new(eps).unwrap();
        let dist = MwhvcSolver::new(cfg.clone()).solve(&g).unwrap();
        let refr = solve_reference(&g, &cfg, &mut NullObserver).unwrap();
        assert_eq!(dist.cover, refr.cover, "case {case}");
        assert_eq!(dist.levels, refr.levels, "case {case}");
        assert_eq!(dist.duals, refr.duals, "case {case}");
        assert_eq!(dist.iterations, refr.iterations, "case {case}");
    }
}

#[test]
fn pruning_preserves_covers() {
    let mut rng = StdRng::seed_from_u64(0x4d_7e);
    let mut checked = 0;
    while checked < 48 {
        let g = random_hypergraph(&mut rng);
        if g.m() == 0 {
            continue;
        }
        checked += 1;
        let mut c = Cover::full(g.n());
        c.prune_redundant(&g);
        assert!(c.is_cover_of(&g));
    }
}

#[test]
fn format_roundtrip() {
    use distributed_covering::hypergraph::format;
    let mut rng = StdRng::seed_from_u64(0x5e_8f);
    for case in 0..48 {
        let g = random_hypergraph(&mut rng);
        let text = format::serialize(&g);
        let g2 = format::parse(&text).unwrap();
        assert_eq!(g, g2, "case {case}");
    }
}
